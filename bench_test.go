// Benchmark harness: one benchmark per figure of the paper's
// evaluation (§5), plus the microbenchmarks that calibrate the cluster
// simulator's cost constants and the ablation benchmarks for the
// design choices DESIGN.md calls out.
//
// Figures 12–20 run the calibrated simulator and report the figure's
// headline numbers as benchmark metrics (ratios, efficiencies,
// crossover points). Figure 21 and the microbenchmarks exercise the
// real runtime. Regenerate the full series with cmd/dcrbench.
package godcr_test

import (
	"fmt"
	"testing"
	"time"

	"godcr"
	"godcr/internal/metg"
	"godcr/internal/sim"
	"godcr/internal/workloads"
)

func pick(f workloads.Figure, label string, nodes int) sim.Result {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		for _, p := range s.Points {
			if p.Nodes == nodes {
				return p
			}
		}
	}
	panic(fmt.Sprintf("%s: no %q at %d", f.ID, label, nodes))
}

func lastEff(f workloads.Figure, label string) float64 {
	for _, s := range f.Series {
		if s.Label == label {
			e := workloads.Efficiency(s)
			return e[len(e)-1]
		}
	}
	panic("no series " + label)
}

// BenchmarkFig12Stencil regenerates Figure 12 (2-D stencil weak and
// strong scaling, no-CR vs SCR vs DCR).
func BenchmarkFig12Stencil(b *testing.B) {
	var a, s workloads.Figure
	for i := 0; i < b.N; i++ {
		a, s = workloads.Fig12a(), workloads.Fig12b()
	}
	dcr := pick(a, "Dynamic Control Replication", 512)
	scr := pick(a, "Static Control Replication", 512)
	nocr := pick(a, "No Control Replication", 512)
	b.ReportMetric(dcr.PerNode/scr.PerNode, "weak-dcr/scr@512")
	b.ReportMetric(dcr.PerNode/nocr.PerNode, "weak-dcr/nocr@512")
	b.ReportMetric(pick(s, "Dynamic Control Replication", 512).Throughput/
		pick(s, "Dynamic Control Replication", 64).Throughput, "strong-gain-64to512")
}

// BenchmarkFig13Circuit regenerates Figure 13 (circuit simulation).
func BenchmarkFig13Circuit(b *testing.B) {
	var f workloads.Figure
	for i := 0; i < b.N; i++ {
		f = workloads.Fig13a()
	}
	b.ReportMetric(pick(f, "Dynamic Control Replication", 512).PerNode/
		pick(f, "Static Control Replication", 512).PerNode, "dcr/scr@512")
	b.ReportMetric(pick(f, "Dynamic Control Replication", 512).PerNode/
		pick(f, "No Control Replication", 512).PerNode, "dcr/nocr@512")
}

// BenchmarkFig14Pennant regenerates Figure 14 (Pennant vs MPI).
func BenchmarkFig14Pennant(b *testing.B) {
	var f workloads.Figure
	for i := 0; i < b.N; i++ {
		f = workloads.Fig14()
	}
	dcr := pick(f, "Legion Dynamic Control Replication", 32).Throughput
	b.ReportMetric(dcr/pick(f, "MPI+CUDA", 32).Throughput, "dcr/mpi-cuda@256gpus")
	b.ReportMetric(dcr/pick(f, "MPI+CUDA+GPUDirect", 32).Throughput, "dcr/gpudirect@256gpus")
}

// BenchmarkFig15ResNet regenerates Figure 15 (ResNet-50 training).
func BenchmarkFig15ResNet(b *testing.B) {
	var f workloads.Figure
	for i := 0; i < b.N; i++ {
		f = workloads.Fig15()
	}
	b.ReportMetric(pick(f, "FlexFlow (Dynamic Control Replication)", 768).Makespan/
		pick(f, "TensorFlow", 768).Makespan, "dcr/tf-epoch@768gpus")
	b.ReportMetric(pick(f, "FlexFlow (No Control Replication)", 768).Makespan/
		pick(f, "FlexFlow (Dynamic Control Replication)", 768).Makespan, "nocr/dcr-epoch@768gpus")
}

// BenchmarkFig16Soleil regenerates Figure 16 (Soleil-X weak scaling).
func BenchmarkFig16Soleil(b *testing.B) {
	var f workloads.Figure
	for i := 0; i < b.N; i++ {
		f = workloads.Fig16()
	}
	b.ReportMetric(lastEff(f, "Soleil-X with Dynamic Control Replication"), "efficiency@1024gpus")
}

// BenchmarkFig17HTR regenerates Figure 17 (HTR weak scaling).
func BenchmarkFig17HTR(b *testing.B) {
	var qa, la workloads.Figure
	for i := 0; i < b.N; i++ {
		qa, la = workloads.Fig17a(), workloads.Fig17b()
	}
	b.ReportMetric(lastEff(qa, "HTR with Dynamic Control Replication"), "quartz-eff@9216cores")
	b.ReportMetric(lastEff(la, "HTR with Dynamic Control Replication"), "lassen-eff@512gpus")
}

// BenchmarkFig18Candle regenerates Figure 18 (CANDLE MLP training).
func BenchmarkFig18Candle(b *testing.B) {
	var f workloads.Figure
	for i := 0; i < b.N; i++ {
		f = workloads.Fig18()
	}
	b.ReportMetric(pick(f, "TensorFlow", 768).Makespan/
		pick(f, "FlexFlow (Dynamic Control Replication)", 768).Makespan, "tf/dcr-epoch@768gpus")
}

// BenchmarkFig19LogReg regenerates Figure 19 (Legate logistic
// regression vs Dask).
func BenchmarkFig19LogReg(b *testing.B) {
	var f workloads.Figure
	for i := 0; i < b.N; i++ {
		f = workloads.Fig19()
	}
	b.ReportMetric(pick(f, "Legate DCR CPU", 32).Throughput/
		pick(f, "Dask Centralized CPU", 32).Throughput, "legate/dask@32sockets")
}

// BenchmarkFig20CG regenerates Figure 20 (Legate CG vs Dask).
func BenchmarkFig20CG(b *testing.B) {
	var f workloads.Figure
	for i := 0; i < b.N; i++ {
		f = workloads.Fig20()
	}
	b.ReportMetric(pick(f, "Legate DCR CPU", 32).Throughput/
		pick(f, "Dask Centralized CPU", 32).Throughput, "legate/dask@32sockets")
}

// BenchmarkFig21METG measures METG(50%) on the real runtime for the
// four {trace, safe} configurations of Figure 21.
func BenchmarkFig21METG(b *testing.B) {
	for _, cfg := range []struct {
		name        string
		trace, safe bool
	}{
		{"NoTrace/NoSafe", false, false},
		{"NoTrace/Safe", false, true},
		{"Trace/NoSafe", true, false},
		{"Trace/Safe", true, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var m time.Duration
			for i := 0; i < b.N; i++ {
				var err error
				m, err = metg.Measure(metg.Options{
					Shards: 4, Steps: 15, Copies: 2, Trace: cfg.trace, Safe: cfg.safe,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.Microseconds()), "metg-us")
		})
	}
}

// --- Calibration microbenchmarks (real runtime) -------------------------

// runStencilOnce executes a fixed stencil workload on a fresh runtime
// and returns its stats.
func runStencilBench(b *testing.B, cfg godcr.Config, tiles, steps int, trace bool) godcr.Stats {
	b.Helper()
	rt := godcr.NewRuntime(cfg)
	defer rt.Shutdown()
	rt.RegisterTask("bump", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		x.Rect().Each(func(p godcr.Point) bool { x.Set(p, x.At(p)+1); return true })
		return 0, nil
	})
	rt.RegisterTask("smooth", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		g := tc.Region(1).Field("x")
		x.Rect().Each(func(p godcr.Point) bool {
			x.Set(p, 0.5*x.At(p)+0.25*(g.At(godcr.Pt1(p[0]-1))+g.At(godcr.Pt1(p[0]+1))))
			return true
		})
		return 0, nil
	})
	err := rt.Execute(func(ctx *godcr.Context) error {
		r := ctx.CreateRegion(godcr.R1(0, int64(tiles*16)-1), "x")
		owned := ctx.PartitionEqual(r, tiles)
		ghost := ctx.PartitionHalo(owned, 1)
		interior := ctx.PartitionInterior(owned, 1)
		ctx.Fill(r, "x", 1)
		dom := godcr.R1(0, int64(tiles)-1)
		for s := 0; s < steps; s++ {
			if trace {
				ctx.BeginTrace(3)
			}
			ctx.IndexLaunch(godcr.Launch{Task: "bump", Domain: dom,
				Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"x"}}}})
			ctx.IndexLaunch(godcr.Launch{Task: "smooth", Domain: dom,
				Reqs: []godcr.RegionReq{
					{Part: interior, Priv: godcr.ReadWrite, Fields: []string{"x"}},
					{Part: ghost, Priv: godcr.ReadOnly, Fields: []string{"x"}}}})
			if trace {
				ctx.EndTrace(3)
			}
		}
		ctx.ExecutionFence()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return rt.Stats()
}

// BenchmarkAnalysisPerOp measures the end-to-end cost of one analyzed
// operation (the source of the simulator's CoarsePerOp+FinePerTask
// calibration).
func BenchmarkAnalysisPerOp(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const steps = 50
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runStencilBench(b, godcr.Config{Shards: shards}, shards*2, steps, false)
			}
			opsPerRun := float64(2*steps + 4)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/opsPerRun, "ns/analyzed-op")
		})
	}
}

// BenchmarkCollectives measures the fence primitive (barrier) and
// all-reduce at several machine sizes.
func BenchmarkCollectives(b *testing.B) {
	for _, shards := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("barrier/shards=%d", shards), func(b *testing.B) {
			benchBarrier(b, shards)
		})
	}
}

// --- Ablation benchmarks --------------------------------------------------

// BenchmarkAblationFences compares the full runtime against the
// no-fence ablation (fences still computed, never executed).
func BenchmarkAblationFences(b *testing.B) {
	for _, disable := range []bool{false, true} {
		b.Run(fmt.Sprintf("disableFences=%v", disable), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runStencilBench(b, godcr.Config{Shards: 4, DisableFences: disable}, 8, 30, false)
			}
		})
	}
}

// BenchmarkAblationSafety compares determinism checking on and off
// (the Fig. 21 Safe/No-Safe axis, as raw runtime rather than METG).
func BenchmarkAblationSafety(b *testing.B) {
	for _, safe := range []bool{false, true} {
		b.Run(fmt.Sprintf("safe=%v", safe), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runStencilBench(b, godcr.Config{Shards: 4, SafetyChecks: safe, CheckInterval: 8}, 8, 30, false)
			}
		})
	}
}

// BenchmarkAblationTracing compares traced vs untraced loops.
func BenchmarkAblationTracing(b *testing.B) {
	for _, trace := range []bool{false, true} {
		b.Run(fmt.Sprintf("trace=%v", trace), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runStencilBench(b, godcr.Config{Shards: 4}, 8, 30, trace)
			}
		})
	}
}

// BenchmarkAblationWireEncode compares shared-memory message passing
// against strict gob-encoded distribution.
func BenchmarkAblationWireEncode(b *testing.B) {
	for _, wire := range []bool{false, true} {
		b.Run(fmt.Sprintf("wire=%v", wire), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runStencilBench(b, godcr.Config{Shards: 4, WireEncode: wire}, 8, 30, false)
			}
		})
	}
}

// BenchmarkSPMDVsDCR compares the hand-written explicitly parallel
// stencil (zero runtime overhead, maximal programmer effort — the MPI
// baseline of Fig. 14) against the implicitly parallel DCR version of
// the same program on the real transport. SPMD is the overhead floor;
// the gap is the price of implicit parallelism at this task grain.
func BenchmarkSPMDVsDCR(b *testing.B) {
	const ranks, steps = 4, 30
	b.Run("spmd", func(b *testing.B) {
		benchSPMDStencil(b, ranks, ranks*16, steps)
	})
	b.Run("dcr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runStencilBench(b, godcr.Config{Shards: ranks}, ranks, steps, false)
		}
	})
}

// BenchmarkCentralizedVsDCR is the real-runtime (laptop-scale) version
// of the no-CR comparison: identical program, centralized controller
// vs replicated analysis.
func BenchmarkCentralizedVsDCR(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  godcr.Config
	}{
		{"central", godcr.Config{Shards: 4, Centralized: true}},
		{"dcr", godcr.Config{Shards: 4}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runStencilBench(b, mode.cfg, 8, 30, false)
			}
		})
	}
}
