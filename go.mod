module godcr

go 1.22
