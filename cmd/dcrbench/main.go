// Command dcrbench regenerates the paper's evaluation figures
// (§5, Figures 12–21) and prints each as tab-separated series suitable
// for plotting. Figures 12–20 come from the calibrated cluster
// simulator (internal/sim + internal/workloads); Figure 21 (the METG
// cost of control-determinism checks) runs on the real runtime.
//
// Usage:
//
//	dcrbench                 # all simulator figures
//	dcrbench -fig fig14      # one figure
//	dcrbench -fig fig21      # the real-runtime METG sweep
//	dcrbench -fig fig21 -maxshards 16 -steps 30
//	dcrbench -list           # figure ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"godcr/internal/metg"
	"godcr/internal/workloads"
)

func main() {
	fig := flag.String("fig", "all", "figure id (fig12a..fig20, fig21) or 'all'")
	list := flag.Bool("list", false, "list figure ids")
	maxShards := flag.Int("maxshards", 8, "largest shard count for fig21 (real runtime)")
	steps := flag.Int("steps", 20, "steps per fig21 measurement")
	flag.Parse()

	figs := workloads.AllFigures()
	if *list {
		for _, f := range figs {
			fmt.Printf("%-8s %s\n", f.ID, f.Title)
		}
		fmt.Printf("%-8s %s\n", "fig21", "METG(50%) of control determinism checks (real runtime)")
		fmt.Printf("%-8s %s\n", "taskbench", "Task Bench dependence-pattern sweep (real runtime)")
		return
	}

	want := strings.ToLower(*fig)
	printed := false
	for _, f := range figs {
		if want == "all" || want == f.ID {
			printFigure(f)
			printed = true
		}
	}
	if want == "all" || want == "fig21" {
		runFig21(*maxShards, *steps)
		printed = true
	}
	if want == "taskbench" {
		runTaskBench(*maxShards, *steps)
		printed = true
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "unknown figure %q (use -list)\n", *fig)
		os.Exit(2)
	}
}

func printFigure(f workloads.Figure) {
	fmt.Print(workloads.FormatTSV(f))
	fmt.Println()
}

// runTaskBench sweeps the Task Bench dependence patterns at a fixed
// grain and prints per-pattern step overhead on the real runtime.
func runTaskBench(shards, steps int) {
	fmt.Println("# taskbench — dependence-pattern sweep (real runtime)")
	fmt.Printf("# %d shards, %d steps, 100µs tasks\n", shards, steps)
	fmt.Println("pattern\telapsed-seconds")
	for _, p := range []metg.Pattern{
		metg.PatternTrivial, metg.PatternChain, metg.PatternStencil,
		metg.PatternFFT, metg.PatternRandom,
	} {
		el, err := metg.RunPattern(metg.Options{Shards: shards, Steps: steps, Copies: 2}, p, 100*time.Microsecond)
		if err != nil {
			fmt.Printf("%v\tERR: %v\n", p, err)
			continue
		}
		fmt.Printf("%v\t%.4g\n", p, el.Seconds())
	}
	fmt.Println()
}

func runFig21(maxShards, steps int) {
	fmt.Println("# fig21 — METG(50%) of control determinism checks (real runtime)")
	fmt.Println("# x: shards, y: METG(50%) seconds (lower is better)")
	fmt.Println("shards\tNoTrace/NoSafe\tNoTrace/Safe\tTrace/NoSafe\tTrace/Safe")
	for n := 1; n <= maxShards; n *= 2 {
		fmt.Printf("%d", n)
		for _, cfg := range []struct{ trace, safe bool }{
			{false, false}, {false, true}, {true, false}, {true, true},
		} {
			m, err := metg.Measure(metg.Options{
				Shards: n, Steps: steps, Copies: 4,
				Trace: cfg.trace, Safe: cfg.safe,
			})
			if err != nil {
				fmt.Printf("\tERR")
				continue
			}
			fmt.Printf("\t%.4g", m.Seconds())
		}
		fmt.Println()
	}
	fmt.Println()
}
