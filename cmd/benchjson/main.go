// Command benchjson times the core stencil and circuit workloads and
// writes a machine-readable benchmark record — the committed
// BENCH_core.json — so perf regressions show up in review as a diff
// rather than a vibe. Every row reports the median of repeated runs
// (see bench). Regenerate with `make bench-json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"godcr"
)

type result struct {
	// Name is workload/shards (plus "/journal" for journal-on runs).
	Name string `json:"name"`
	// NsPerOp is the median wall-clock of one full workload execution
	// (setup + run + teardown).
	NsPerOp int64 `json:"ns_per_op"`
	// Runs is the number of timed repetitions behind the median.
	Runs int `json:"runs"`
}

type record struct {
	GoVersion string `json:"go_version"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	// JournalOverheadPct is the stencil@4 slowdown of Config.Journal,
	// in percent (negative = noise in the journal's favor). The journal
	// must be cheap: one append per op on one shard.
	JournalOverheadPct float64 `json:"journal_overhead_pct"`
	// CheckpointOverheadPct is the stencil@4 slowdown of periodic
	// checkpoints (CheckpointEvery=16) over journal-only, in percent.
	// A cut snapshots the journal prefix and version vector on shard 0;
	// it must stay in the same noise band as the journal itself.
	CheckpointOverheadPct float64 `json:"checkpoint_overhead_pct"`
	// TCPLoopbackOverheadPct is the stencil@4 slowdown of running each
	// shard behind its own TCP-loopback endpoint versus the in-process
	// backend's synchronous handoff, in percent of a full workload
	// execution, under the backend defaults (binary payload codec,
	// frame coalescing). The two sides are timed interleaved in one
	// window (benchPair), so a load shift on a shared box biases both
	// medians instead of whichever ran second. The codec=/batching=
	// rows in Results break the win down per dimension;
	// TCPLoopbackGobNoBatchPct is the same number under the historical
	// wire path (gob, one write per frame).
	TCPLoopbackOverheadPct   float64 `json:"tcp_loopback_overhead_pct"`
	TCPLoopbackGobNoBatchPct float64 `json:"tcp_loopback_gob_nobatch_pct"`
	// TCPLoopbackDataPushPct is the same paired overhead with
	// Config.DataPush on: ghost data shipped proactively at publication
	// instead of demand-pulled. On a single-core host this sits above
	// the pull number — the symmetric enumeration makes every process
	// analyze every launch point, and with one shard per process that
	// replicated analysis costs more than the saved request frames. The
	// row is kept as an honest ablation, not the default.
	TCPLoopbackDataPushPct float64 `json:"tcp_loopback_datapush_pct"`
	// TCPCRCOverheadPct is the stencil@4 TCP-loopback slowdown of the
	// per-frame CRC32C integrity pair (header CRC + payload CRC, written
	// on send and verified on receive) versus the same wire path with
	// checksumming disabled (TCPOptions.DisableCRC), in percent of a
	// full workload execution, timed as an interleaved pair. Castagnoli
	// CRC32 is a hardware instruction on amd64/arm64, so end-to-end
	// frame integrity must stay in the low single digits; the record
	// refuses to commit a number at or above 3%.
	TCPCRCOverheadPct float64 `json:"tcp_crc_overhead_pct"`
	// RecoveryFullNs / RecoveryPartialNs are the median wall-clock from
	// a mid-run shard death (stencil@4 over TCP loopback, one shard's
	// cluster torn down after its first checkpoint spill, then respawned
	// reborn on the same address) to every shard completing, under the
	// classic full rollback vs Config.PartialRestart. Partial must come
	// in under full: survivors skip their retained prefix instead of
	// re-executing it, and the replay window's fence barriers are served
	// from the park instead of re-crossing the wire.
	RecoveryFullNs    int64 `json:"recovery_full_ns"`
	RecoveryPartialNs int64 `json:"recovery_partial_ns"`
	// RecoveryPartialSavingsPct is how much of the full-restart recovery
	// latency the partial path saves, in percent.
	RecoveryPartialSavingsPct float64 `json:"recovery_partial_savings_pct"`
	// StatsOverheadPct is the stencil@4 slowdown of the per-stage timer
	// tree (on by default; see Config.DisableTimers) versus the same
	// run with timers off, in percent, timed as an interleaved pair.
	// The hot path is two clock reads and two atomic adds per span, so
	// the record refuses to commit an observability tax at or above 2%.
	StatsOverheadPct float64 `json:"stats_overhead_pct"`
	// StageNs breaks one stencil@4 execution down by pipeline stage —
	// coarse analysis, fence waits, fine analysis, point bodies, wire
	// waits, collectives — read from the same per-stage timer tree the
	// godcr-node /stats endpoint serves (total ns summed over shards,
	// one representative run; absolute values vary with the host, the
	// column exists so the shape of the profile is reviewable).
	StageNs map[string]int64 `json:"stage_ns"`
	// JobsPerSec is the resident multi-job host's mixed-workload
	// throughput: batches of stencil+circuit+logreg jobs streamed through
	// one godcr.Host (max-jobs=2, in-process backend, shards=4), jobs
	// divided by the median batch wall-clock. The host — cluster, task
	// registry, detector — is built once and reused across the whole
	// stream, which is the point of the job plane.
	JobsPerSec float64  `json:"jobs_per_sec"`
	Results    []result `json:"results"`
}

// registrar is the registration seam shared by a single-job Runtime and
// a resident multi-job Host.
type registrar interface {
	RegisterTask(name string, fn godcr.TaskFn)
}

func registerStencilTasks(rt registrar) {
	rt.RegisterTask("bump", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		x.Rect().Each(func(p godcr.Point) bool { x.Set(p, x.At(p)+1); return true })
		return 0, nil
	})
	rt.RegisterTask("smooth", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		g := tc.Region(1).Field("x")
		x.Rect().Each(func(p godcr.Point) bool {
			x.Set(p, 0.5*x.At(p)+0.25*(g.At(godcr.Pt1(p[0]-1))+g.At(godcr.Pt1(p[0]+1))))
			return true
		})
		return 0, nil
	})
}

func stencilProgram(tiles, steps int) godcr.Program {
	return func(ctx *godcr.Context) error {
		r := ctx.CreateRegion(godcr.R1(0, int64(tiles*16)-1), "x")
		owned := ctx.PartitionEqual(r, tiles)
		ghost := ctx.PartitionHalo(owned, 1)
		interior := ctx.PartitionInterior(owned, 1)
		ctx.Fill(r, "x", 1)
		dom := godcr.R1(0, int64(tiles)-1)
		for s := 0; s < steps; s++ {
			ctx.IndexLaunch(godcr.Launch{Task: "bump", Domain: dom,
				Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"x"}}}})
			ctx.IndexLaunch(godcr.Launch{Task: "smooth", Domain: dom,
				Reqs: []godcr.RegionReq{
					{Part: interior, Priv: godcr.ReadWrite, Fields: []string{"x"}},
					{Part: ghost, Priv: godcr.ReadOnly, Fields: []string{"x"}}}})
		}
		ctx.ExecutionFence()
		return nil
	}
}

func runStencil(cfg godcr.Config, tiles, steps int) error {
	rt := godcr.NewRuntime(cfg)
	defer rt.Shutdown()
	registerStencilTasks(rt)
	return rt.Execute(stencilProgram(tiles, steps))
}

// stageBreakdown runs one instrumented stencil and reads the per-stage
// totals off the runtime's timer tree — the same counters godcr-node's
// /stats endpoint serves live.
func stageBreakdown(shards, tiles, steps int) (map[string]int64, error) {
	rt := godcr.NewRuntime(godcr.Config{Shards: shards})
	defer rt.Shutdown()
	registerStencilTasks(rt)
	if err := rt.Execute(stencilProgram(tiles, steps)); err != nil {
		return nil, err
	}
	snap := rt.TimerSnapshot()
	stages := make(map[string]int64)
	for _, path := range []string{
		"attempt", "coarse/analysis", "fine/fence_wait", "fine/analysis",
		"execute/point", "execute/pull_wire", "execute/push_wire", "collective",
	} {
		if s := snap.Find(path); s != nil {
			stages[path] = s.TotalNs
		}
	}
	if stages["attempt"] == 0 || stages["coarse/analysis"] == 0 || stages["execute/point"] == 0 {
		return nil, fmt.Errorf("timer tree empty after an instrumented run: %v", stages)
	}
	return stages, nil
}

// runStencilTCP runs the stencil with every shard behind its own
// TCP-loopback endpoint — one runtime per shard, frames crossing real
// sockets. Still one OS process: the row measures the wire cost
// (payload encode + framing + socket hop per message), not exec.
// codec picks the payload encoding (nil = the backend default,
// binary); noCoalesce disables frame batching, so the gob/no-batch row
// reproduces the historical one-write-per-frame wire path; noCRC
// disables frame checksumming on every endpoint (the integrity-cost
// ablation — never a production configuration).
func runStencilTCP(shards, tiles, steps int, codec godcr.PayloadCodec, noCoalesce, push, noCRC bool) error {
	lns := make([]net.Listener, shards)
	addrs := make([]string, shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	rts := make([]*godcr.Runtime, shards)
	for i := range rts {
		tr, err := godcr.NewTCPTransport(godcr.TCPOptions{
			Self: godcr.NodeID(i), Addrs: addrs, Listener: lns[i],
			Codec: codec, NoCoalesce: noCoalesce, DisableCRC: noCRC,
		})
		if err != nil {
			return err
		}
		rts[i] = godcr.NewRuntime(godcr.Config{Shards: shards, Transport: tr, DataPush: push})
		registerStencilTasks(rts[i])
	}
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i := range rts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = rts[i].Execute(stencilProgram(tiles, steps))
		}(i)
	}
	wg.Wait()
	for _, rt := range rts {
		rt.Shutdown()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func registerCircuitTasks(rt registrar) {
	rt.RegisterTask("charge_up", func(tc *godcr.TaskContext) (float64, error) {
		acc := tc.Region(0).Field("charge")
		total := 0.0
		acc.Rect().Each(func(p godcr.Point) bool {
			acc.Fold(p, float64(tc.Point[0]+1)*0.25)
			total += float64(p[0])
			return true
		})
		return total, nil
	})
	rt.RegisterTask("update_v", func(tc *godcr.TaskContext) (float64, error) {
		v := tc.Region(0).Field("voltage")
		q := tc.Region(1).Field("charge")
		v.Rect().Each(func(p godcr.Point) bool {
			v.Set(p, v.At(p)+q.At(p))
			return true
		})
		return 0, nil
	})
}

func circuitProgram(nnodes, ntiles, nsteps int) godcr.Program {
	return func(ctx *godcr.Context) error {
		grid := godcr.R1(0, int64(nnodes)-1)
		tiles := godcr.R1(0, int64(ntiles)-1)
		nodes := ctx.CreateRegion(grid, "voltage", "charge")
		owned := ctx.PartitionEqual(nodes, ntiles)
		rects := make([]godcr.Rect, ntiles)
		for i := range rects {
			rects[i] = grid
		}
		all := ctx.PartitionCustom(nodes, tiles, rects)
		ctx.Fill(nodes, "voltage", 1.0)
		for step := 0; step < nsteps; step++ {
			ctx.Fill(nodes, "charge", 0)
			fm := ctx.IndexLaunch(godcr.Launch{
				Task: "charge_up", Domain: tiles,
				Reqs: []godcr.RegionReq{{Part: all, Priv: godcr.Reduce, RedOp: godcr.ReduceAdd, Fields: []string{"charge"}}},
			})
			ctx.IndexLaunch(godcr.Launch{
				Task: "update_v", Domain: tiles,
				Reqs: []godcr.RegionReq{
					{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"voltage"}},
					{Part: owned, Priv: godcr.ReadOnly, Fields: []string{"charge"}},
				},
			})
			fm.Reduce(godcr.ReduceAdd).Get()
		}
		ctx.ExecutionFence()
		return nil
	}
}

func runCircuit(cfg godcr.Config, nnodes, ntiles, nsteps int) error {
	rt := godcr.NewRuntime(cfg)
	defer rt.Shutdown()
	registerCircuitTasks(rt)
	return rt.Execute(circuitProgram(nnodes, ntiles, nsteps))
}

func registerLogregTasks(rt registrar) {
	rt.RegisterTask("lr_init", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		y := tc.Region(0).Field("y")
		x.Rect().Each(func(p godcr.Point) bool {
			x.Set(p, float64((p[0]*37)%17)/8.0-1.0)
			if p[0]%3 == 0 {
				y.Set(p, 1)
			} else {
				y.Set(p, -1)
			}
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("lr_grad", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		y := tc.Region(0).Field("y")
		w := tc.Args[0]
		g := 0.0
		x.Rect().Each(func(p godcr.Point) bool {
			xv, yv := x.At(p), y.At(p)
			g += -yv * xv / (1 + math.Exp(yv*w*xv))
			return true
		})
		return g, nil
	})
}

// logregProgram: future-fed gradient descent — each step's launch
// arguments depend on the previous step's future-map reduction.
func logregProgram(nsamples, ntiles, nsteps int) godcr.Program {
	return func(ctx *godcr.Context) error {
		grid := godcr.R1(0, int64(nsamples)-1)
		tiles := godcr.R1(0, int64(ntiles)-1)
		data := ctx.CreateRegion(grid, "x", "y")
		owned := ctx.PartitionEqual(data, ntiles)
		ctx.IndexLaunch(godcr.Launch{
			Task: "lr_init", Domain: tiles,
			Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.WriteDiscard, Fields: []string{"x", "y"}}},
		})
		w := 0.0
		for step := 0; step < nsteps; step++ {
			fm := ctx.IndexLaunch(godcr.Launch{
				Task: "lr_grad", Domain: tiles,
				Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.ReadOnly, Fields: []string{"x", "y"}}},
				Args: []float64{w},
			})
			w -= 0.5 * fm.Reduce(godcr.ReduceAdd).Get() / float64(nsamples)
		}
		ctx.ExecutionFence()
		return nil
	}
}

// benchJobs measures mixed-job throughput on one resident host: every
// batch streams stencil+circuit+logreg jobs (two of each) through the
// same godcr.Host with maxJobs running concurrently, FIFO-admitted like
// the godcr-node job server. The host and its task registry persist
// across the entire bench — per-job cost is job creation plus the
// program run, not cluster construction. Returns the row and the
// jobs/sec implied by the median batch.
func benchJobs(shards, maxJobs int) (result, float64) {
	h := godcr.NewHost(godcr.Config{Shards: shards})
	defer h.Shutdown()
	registerStencilTasks(h)
	registerCircuitTasks(h)
	registerLogregTasks(h)
	programs := []godcr.Program{
		stencilProgram(8, 10),
		circuitProgram(64, 8, 10),
		logregProgram(48, 8, 6),
	}
	const perWorkload = 2
	var nextID uint64 // job ids name wire namespaces; monotone across the stream
	batch := func() error {
		slots := make(chan struct{}, maxJobs)
		errs := make([]error, len(programs)*perWorkload)
		var wg sync.WaitGroup
		k := 0
		for _, prog := range programs {
			for j := 0; j < perWorkload; j++ {
				idx := k
				k++
				nextID++
				id := nextID
				slots <- struct{}{}
				wg.Add(1)
				go func(idx int, id uint64, prog godcr.Program) {
					defer wg.Done()
					defer func() { <-slots }()
					rt := h.NewJob(id)
					defer rt.Shutdown()
					errs[idx] = rt.Execute(prog)
				}(idx, id, prog)
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	res := bench(fmt.Sprintf("jobs/mixed/shards=%d/max-jobs=%d", shards, maxJobs), batch)
	jobsPerSec := float64(len(programs)*perWorkload) * float64(time.Second.Nanoseconds()) / float64(res.NsPerOp)
	return res, jobsPerSec
}

// recoveryLatency measures one mid-run shard-death recovery: four
// supervised single-shard runtimes over TCP loopback, shard `victim`'s
// cluster torn down abruptly once its first periodic checkpoint has
// spilled (no goodbye, like a SIGKILL), then respawned reborn on the
// same address and checkpoint directory. Returns the wall-clock from
// the kill to the last shard completing. With partial=true the
// survivors must actually recover through the partial path (the row
// would be mislabeled otherwise).
func recoveryLatency(partial bool, steps int) (time.Duration, error) {
	const shards = 4
	const victim = 1
	lns := make([]net.Listener, shards)
	addrs := make([]string, shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	dirs := make([]string, shards)
	for i := range dirs {
		d, err := os.MkdirTemp("", "godcr-bench-ckpt-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(d)
		dirs[i] = d
	}
	mkRuntime := func(i int, ln net.Listener) (*godcr.Runtime, error) {
		tr, err := godcr.NewTCPTransport(godcr.TCPOptions{
			Self: godcr.NodeID(i), Addrs: addrs, Listener: ln,
		})
		if err != nil {
			return nil, err
		}
		rt := godcr.NewRuntime(godcr.Config{
			Shards:          shards,
			Transport:       tr,
			CheckpointEvery: 4,
			CheckpointDir:   dirs[i],
			HeartbeatEvery:  5 * time.Millisecond,
			OpDeadline:      10 * time.Second,
			PartialRestart:  partial,
		})
		registerStencilTasks(rt)
		return rt, nil
	}
	pol := godcr.SupervisorPolicy{MaxRestarts: 8, Backoff: 10 * time.Millisecond, JitterSeed: 42}
	rts := make([]*godcr.Runtime, shards)
	for i := range rts {
		rt, err := mkRuntime(i, lns[i])
		if err != nil {
			return 0, err
		}
		rts[i] = rt
	}
	prog := stencilProgram(8, steps)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		if i == victim {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = rts[i].RunSupervised(prog, pol)
		}(i)
	}
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		rts[victim].RunSupervised(prog, pol) // dies mid-run; error expected
	}()
	// Kill once the victim's own recorder has spilled a cut with
	// progress — a mid-run death with a usable on-disk resume point.
	spillBy := time.Now().Add(20 * time.Second)
	for {
		if cp, err := godcr.LoadCheckpoint(dirs[victim]); err == nil && cp != nil && cp.Frontier > 0 {
			break
		}
		if time.Now().After(spillBy) {
			return 0, fmt.Errorf("victim never spilled a checkpoint")
		}
		time.Sleep(500 * time.Microsecond)
	}
	killed := time.Now()
	rts[victim].Shutdown()
	<-victimDone
	// Respawn reborn: same address, same checkpoint directory.
	var ln net.Listener
	rebindBy := time.Now().Add(10 * time.Second)
	for {
		var err error
		if ln, err = net.Listen("tcp", addrs[victim]); err == nil {
			break
		}
		if time.Now().After(rebindBy) {
			return 0, fmt.Errorf("rebind %s: %v", addrs[victim], err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	reborn, err := mkRuntime(victim, ln)
	if err != nil {
		return 0, err
	}
	rts[victim] = reborn
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[victim] = rts[victim].RunSupervised(prog, pol)
	}()
	wg.Wait()
	lat := time.Since(killed)
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	hash := rts[0].ControlHash()
	for i := 1; i < shards; i++ {
		if rts[i].ControlHash() != hash {
			return 0, fmt.Errorf("control hash split after recovery")
		}
	}
	if partial {
		var partials uint64
		for i, rt := range rts {
			if i == victim {
				continue
			}
			partials += rt.Stats().PartialRestarts
		}
		if partials == 0 {
			return 0, fmt.Errorf("partial restart did not engage")
		}
	}
	for _, rt := range rts {
		rt.Shutdown()
	}
	return lat, nil
}

// recoveryMedian repeats recoveryLatency and returns the median, which
// shrugs off one unlucky detector/backoff alignment.
func recoveryMedian(partial bool, steps, reps int) (time.Duration, error) {
	lats := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		lat, err := recoveryLatency(partial, steps)
		if err != nil {
			return 0, err
		}
		lats = append(lats, lat)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2], nil
}

// bench paces: every row gets at least benchMinReps timed runs and
// roughly benchTargetTime of wall clock, after two warmups.
const (
	benchMinReps    = 20
	benchTargetTime = time.Second
)

// bench times fn and reports the median nanoseconds per run. The
// median, not the mean, is the location statistic every row uses: on
// a shared box an occasional scheduler or GC hiccup drags a mean far
// from what a typical run costs, and the overhead ratios this record
// exists for would then compare noise floors instead of code paths
// (the recovery rows already report medians for the same reason).
func bench(name string, fn func() error) result {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
		os.Exit(1)
	}
	for i := 0; i < 2; i++ {
		if err := fn(); err != nil {
			fail(err)
		}
	}
	var lats []time.Duration
	t0 := time.Now()
	for len(lats) < benchMinReps || time.Since(t0) < benchTargetTime {
		s := time.Now()
		if err := fn(); err != nil {
			fail(err)
		}
		lats = append(lats, time.Since(s))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return result{Name: name, NsPerOp: lats[len(lats)/2].Nanoseconds(), Runs: len(lats)}
}

// benchPair times two functions run strictly interleaved — A, B, A,
// B, … inside one window — and returns both medians. Overhead ratios
// must come from a pair: on a shared box the load level drifts between
// windows, and two rows timed back to back would compare different
// machines wearing the same hostname.
func benchPair(nameA string, fnA func() error, nameB string, fnB func() error) (result, result) {
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
		os.Exit(1)
	}
	for i := 0; i < 2; i++ {
		if err := fnA(); err != nil {
			fail(nameA, err)
		}
		if err := fnB(); err != nil {
			fail(nameB, err)
		}
	}
	var la, lb []time.Duration
	t0 := time.Now()
	for len(la) < benchMinReps || time.Since(t0) < 2*benchTargetTime {
		s := time.Now()
		if err := fnA(); err != nil {
			fail(nameA, err)
		}
		la = append(la, time.Since(s))
		s = time.Now()
		if err := fnB(); err != nil {
			fail(nameB, err)
		}
		lb = append(lb, time.Since(s))
	}
	sort.Slice(la, func(i, j int) bool { return la[i] < la[j] })
	sort.Slice(lb, func(i, j int) bool { return lb[i] < lb[j] })
	return result{Name: nameA, NsPerOp: la[len(la)/2].Nanoseconds(), Runs: len(la)},
		result{Name: nameB, NsPerOp: lb[len(lb)/2].Nanoseconds(), Runs: len(lb)}
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output file ('-' for stdout)")
	flag.Parse()

	const steps = 20
	rec := record{GoVersion: runtime.Version(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, shards := range []int{1, 4, 8} {
		shards := shards
		rec.Results = append(rec.Results, bench(
			fmt.Sprintf("stencil/shards=%d", shards),
			func() error { return runStencil(godcr.Config{Shards: shards}, 8, steps) }))
	}
	for _, shards := range []int{1, 4, 8} {
		shards := shards
		rec.Results = append(rec.Results, bench(
			fmt.Sprintf("circuit/shards=%d", shards),
			func() error { return runCircuit(godcr.Config{Shards: shards}, 64, 8, steps) }))
	}
	off := bench("stencil/shards=4/journal=off",
		func() error { return runStencil(godcr.Config{Shards: 4}, 8, steps) })
	on := bench("stencil/shards=4/journal=on",
		func() error { return runStencil(godcr.Config{Shards: 4, Journal: true}, 8, steps) })
	ckpt := bench("stencil/shards=4/checkpoint=16",
		func() error { return runStencil(godcr.Config{Shards: 4, CheckpointEvery: 16}, 8, steps) })
	rec.Results = append(rec.Results, off, on, ckpt)
	rec.JournalOverheadPct = 100 * (float64(on.NsPerOp) - float64(off.NsPerOp)) / float64(off.NsPerOp)
	rec.CheckpointOverheadPct = 100 * (float64(ckpt.NsPerOp) - float64(on.NsPerOp)) / float64(on.NsPerOp)

	// The wire-path matrix: codec × batching over TCP loopback. The
	// binary+batching cell is the backend default and the headline
	// overhead number — timed as an interleaved pair against the
	// in-process baseline so the ratio compares code paths, not load
	// windows. The remaining cells are per-dimension breakdowns, each
	// paired against the same baseline for a window-free ratio.
	pairOverhead := func(name string, codec godcr.PayloadCodec, noCoalesce, push bool) (result, float64) {
		mem, tcp := benchPair(
			"stencil/shards=4/transport=mem/paired-vs-"+name,
			func() error { return runStencil(godcr.Config{Shards: 4}, 8, steps) },
			"stencil/shards=4/transport=tcp-loopback/"+name,
			func() error { return runStencilTCP(4, 8, steps, codec, noCoalesce, push, false) })
		return tcp, 100 * (float64(tcp.NsPerOp) - float64(mem.NsPerOp)) / float64(mem.NsPerOp)
	}
	tcpDefault, defaultPct := pairOverhead("codec=binary/batching=on", godcr.CodecBinary, false, false)
	rec.Results = append(rec.Results, tcpDefault)
	for _, w := range []struct {
		name       string
		codec      godcr.PayloadCodec
		noCoalesce bool
	}{
		{"codec=binary/batching=off", godcr.CodecBinary, true},
		{"codec=gob/batching=on", godcr.CodecGob, false},
	} {
		w := w
		rec.Results = append(rec.Results, bench("stencil/shards=4/transport=tcp-loopback/"+w.name,
			func() error { return runStencilTCP(4, 8, steps, w.codec, w.noCoalesce, false, false) }))
	}
	tcpLegacy, legacyPct := pairOverhead("codec=gob/batching=off", godcr.CodecGob, true, false)
	rec.Results = append(rec.Results, tcpLegacy)
	tcpPush, pushPct := pairOverhead("codec=binary/batching=on/datapush=on", godcr.CodecBinary, false, true)
	rec.Results = append(rec.Results, tcpPush)
	rec.TCPLoopbackOverheadPct = defaultPct
	rec.TCPLoopbackGobNoBatchPct = legacyPct
	rec.TCPLoopbackDataPushPct = pushPct
	// The wire-path work exists to beat the historical path; refuse to
	// commit a record where it does not.
	if tcpDefault.NsPerOp >= tcpLegacy.NsPerOp {
		fmt.Fprintf(os.Stderr, "benchjson: binary+batching (%d ns/op) not below gob+no-batch (%d ns/op)\n",
			tcpDefault.NsPerOp, tcpLegacy.NsPerOp)
		os.Exit(1)
	}

	// The integrity ablation: the same default wire path with frame
	// checksumming off, interleaved against CRC on. Hardware CRC32C must
	// keep end-to-end frame integrity effectively free.
	crcOff, crcOn := benchPair(
		"stencil/shards=4/transport=tcp-loopback/crc=off",
		func() error { return runStencilTCP(4, 8, steps, godcr.CodecBinary, false, false, true) },
		"stencil/shards=4/transport=tcp-loopback/crc=on",
		func() error { return runStencilTCP(4, 8, steps, godcr.CodecBinary, false, false, false) })
	rec.Results = append(rec.Results, crcOff, crcOn)
	rec.TCPCRCOverheadPct = 100 * (float64(crcOn.NsPerOp) - float64(crcOff.NsPerOp)) / float64(crcOff.NsPerOp)
	if rec.TCPCRCOverheadPct >= 3 {
		fmt.Fprintf(os.Stderr, "benchjson: frame CRCs cost %.1f%% (>= 3%% budget) over the no-CRC wire path\n",
			rec.TCPCRCOverheadPct)
		os.Exit(1)
	}

	// The observability tax: every row above ran with the per-stage
	// timer tree on (the default); pair it against Config.DisableTimers
	// to price it. The plane is only allowed to exist if it is near
	// free — refuse the record at or above 2%.
	timersOff, timersOn := benchPair(
		"stencil/shards=4/timers=off",
		func() error { return runStencil(godcr.Config{Shards: 4, DisableTimers: true}, 8, steps) },
		"stencil/shards=4/timers=on",
		func() error { return runStencil(godcr.Config{Shards: 4}, 8, steps) })
	rec.Results = append(rec.Results, timersOff, timersOn)
	rec.StatsOverheadPct = 100 * (float64(timersOn.NsPerOp) - float64(timersOff.NsPerOp)) / float64(timersOff.NsPerOp)
	if rec.StatsOverheadPct >= 2 {
		fmt.Fprintf(os.Stderr, "benchjson: per-stage timers cost %.1f%% (>= 2%% budget) over a timer-free run\n",
			rec.StatsOverheadPct)
		os.Exit(1)
	}
	stages, err := stageBreakdown(4, 8, steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: stage breakdown:", err)
		os.Exit(1)
	}
	rec.StageNs = stages

	const recoveryReps = 5
	full, err := recoveryMedian(false, 40, recoveryReps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: recovery/full:", err)
		os.Exit(1)
	}
	part, err := recoveryMedian(true, 40, recoveryReps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: recovery/partial:", err)
		os.Exit(1)
	}
	rec.RecoveryFullNs = full.Nanoseconds()
	rec.RecoveryPartialNs = part.Nanoseconds()
	rec.RecoveryPartialSavingsPct = 100 * (float64(full.Nanoseconds()) - float64(part.Nanoseconds())) / float64(full.Nanoseconds())
	rec.Results = append(rec.Results,
		result{Name: "recovery/stencil/shards=4/scope=full", NsPerOp: full.Nanoseconds(), Runs: recoveryReps},
		result{Name: "recovery/stencil/shards=4/scope=partial", NsPerOp: part.Nanoseconds(), Runs: recoveryReps})
	if part >= full {
		fmt.Fprintf(os.Stderr, "benchjson: partial recovery (%v) not below full (%v)\n", part, full)
		os.Exit(1)
	}

	// Multi-job throughput on one resident host: the job plane's whole
	// pitch is that a stream of jobs shares cluster construction, so the
	// row runs against a Host built once outside the timed window.
	jobsRow, jobsPerSec := benchJobs(4, 2)
	rec.Results = append(rec.Results, jobsRow)
	rec.JobsPerSec = jobsPerSec

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results, journal overhead %+.1f%%)\n",
		*out, len(rec.Results), rec.JournalOverheadPct)
}
