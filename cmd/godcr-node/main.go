// Command godcr-node runs one shard of a DCR cluster as its own OS
// process, with the shards wired together by the TCP transport — the
// multi-process deployment the pluggable Transport seam exists for.
//
// Worker mode (one process per shard):
//
//	godcr-node -shard 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 -workload stencil
//
// runs shard 0 of a 2-shard cluster (the cluster size is len(addrs))
// and prints a JSON record of the run's outputs and control hash.
//
// Launcher mode (acceptance harness):
//
//	godcr-node -launch -n 4 -workload stencil
//
// reserves n loopback ports, spawns itself n times in worker mode, runs
// the same workload on the in-process backend, and demands every
// worker's outputs and ControlHash be bit-identical to it. Exit status
// 0 means the multi-process run is provably equivalent.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"godcr"
)

// report is a worker's machine-readable verdict on stdout.
type report struct {
	Shard    int    `json:"shard"`
	Shards   int    `json:"shards"`
	Workload string `json:"workload"`
	// Hash is the run's ControlHash as two hex words (strings: JSON
	// numbers cannot carry uint64 exactly).
	Hash    [2]string `json:"hash"`
	Outputs []float64 `json:"outputs"`
	// Bytes is the transport's outbound byte count — nonzero on any
	// real multi-shard run.
	Bytes uint64 `json:"bytes"`
}

func hashWords(h [2]uint64) [2]string {
	return [2]string{fmt.Sprintf("%016x", h[0]), fmt.Sprintf("%016x", h[1])}
}

// agreeCell collects one output vector per shard replica and verifies
// the replicas agree bit-for-bit (control replication demands it).
type agreeCell struct {
	mu   sync.Mutex
	vals []float64
	set  bool
}

func (c *agreeCell) record(v []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.set {
		c.vals = append([]float64(nil), v...)
		c.set = true
		return nil
	}
	if len(c.vals) != len(v) {
		return fmt.Errorf("replica output length %d, want %d", len(v), len(c.vals))
	}
	for i := range v {
		if v[i] != c.vals[i] {
			return fmt.Errorf("replica output[%d] = %v, want %v", i, v[i], c.vals[i])
		}
	}
	return nil
}

func (c *agreeCell) get() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals
}

// workload builds a program producing a per-step output vector; every
// backend and shard count must reproduce it bit-identically.
type workload struct {
	register func(rt *godcr.Runtime)
	program  func(out *agreeCell) godcr.Program
}

func workloads() map[string]workload {
	return map[string]workload{
		"stencil": {register: registerStencilTasks, program: stencilProgram},
		"circuit": {register: registerCircuitTasks, program: circuitProgram},
	}
}

func registerStencilTasks(rt *godcr.Runtime) {
	rt.RegisterTask("bump", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		sum := 0.0
		x.Rect().Each(func(p godcr.Point) bool {
			x.Set(p, x.At(p)+1)
			sum += x.At(p)
			return true
		})
		return sum, nil
	})
	rt.RegisterTask("smooth", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		g := tc.Region(1).Field("x")
		x.Rect().Each(func(p godcr.Point) bool {
			x.Set(p, 0.5*x.At(p)+0.25*(g.At(godcr.Pt1(p[0]-1))+g.At(godcr.Pt1(p[0]+1))))
			return true
		})
		return 0, nil
	})
}

// stencilProgram: 8 tiles × 16 cells, 5 halo-exchange steps; the
// output vector is each step's reduced tile sum plus the final field.
func stencilProgram(out *agreeCell) godcr.Program {
	const tiles, steps = 8, 5
	return func(ctx *godcr.Context) error {
		var outs []float64 // per-shard-replica: declared inside the body
		r := ctx.CreateRegion(godcr.R1(0, tiles*16-1), "x")
		owned := ctx.PartitionEqual(r, tiles)
		ghost := ctx.PartitionHalo(owned, 1)
		interior := ctx.PartitionInterior(owned, 1)
		ctx.Fill(r, "x", 1)
		dom := godcr.R1(0, tiles-1)
		for s := 0; s < steps; s++ {
			fm := ctx.IndexLaunch(godcr.Launch{Task: "bump", Domain: dom,
				Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"x"}}}})
			ctx.IndexLaunch(godcr.Launch{Task: "smooth", Domain: dom,
				Reqs: []godcr.RegionReq{
					{Part: interior, Priv: godcr.ReadWrite, Fields: []string{"x"}},
					{Part: ghost, Priv: godcr.ReadOnly, Fields: []string{"x"}}}})
			outs = append(outs, fm.Reduce(godcr.ReduceAdd).Get())
		}
		outs = append(outs, ctx.InlineRead(r, "x")...)
		return out.record(outs)
	}
}

func registerCircuitTasks(rt *godcr.Runtime) {
	rt.RegisterTask("charge_up", func(tc *godcr.TaskContext) (float64, error) {
		acc := tc.Region(0).Field("charge")
		total := 0.0
		acc.Rect().Each(func(p godcr.Point) bool {
			acc.Fold(p, float64(tc.Point[0]+1)*0.25)
			total += float64(p[0])
			return true
		})
		return total, nil
	})
	rt.RegisterTask("update_v", func(tc *godcr.TaskContext) (float64, error) {
		v := tc.Region(0).Field("voltage")
		q := tc.Region(1).Field("charge")
		v.Rect().Each(func(p godcr.Point) bool {
			v.Set(p, v.At(p)+q.At(p))
			return true
		})
		return 0, nil
	})
}

// circuitProgram: aliased reduction partitions (every tile folds into
// the whole grid) + a future-map reduction per step; the output vector
// is each step's reduced total plus the final voltages.
func circuitProgram(out *agreeCell) godcr.Program {
	const nnodes, ntiles, nsteps = 32, 8, 4
	return func(ctx *godcr.Context) error {
		var outs []float64
		grid := godcr.R1(0, nnodes-1)
		tiles := godcr.R1(0, ntiles-1)
		nodes := ctx.CreateRegion(grid, "voltage", "charge")
		owned := ctx.PartitionEqual(nodes, ntiles)
		rects := make([]godcr.Rect, ntiles)
		for i := range rects {
			rects[i] = grid
		}
		all := ctx.PartitionCustom(nodes, tiles, rects)
		ctx.Fill(nodes, "voltage", 1.0)
		for step := 0; step < nsteps; step++ {
			ctx.Fill(nodes, "charge", 0)
			fm := ctx.IndexLaunch(godcr.Launch{
				Task: "charge_up", Domain: tiles,
				Reqs: []godcr.RegionReq{{Part: all, Priv: godcr.Reduce, RedOp: godcr.ReduceAdd, Fields: []string{"charge"}}},
			})
			ctx.IndexLaunch(godcr.Launch{
				Task: "update_v", Domain: tiles,
				Reqs: []godcr.RegionReq{
					{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"voltage"}},
					{Part: owned, Priv: godcr.ReadOnly, Fields: []string{"charge"}},
				},
			})
			outs = append(outs, fm.Reduce(godcr.ReduceAdd).Get())
		}
		outs = append(outs, ctx.InlineRead(nodes, "voltage")...)
		return out.record(outs)
	}
}

// runWorker executes one shard over TCP and returns its report.
func runWorker(shard int, addrs []string, name string) (*report, error) {
	wl, ok := workloads()[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	tr, err := godcr.NewTCPTransport(godcr.TCPOptions{
		Self:  godcr.NodeID(shard),
		Addrs: addrs,
	})
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	rt := godcr.NewRuntime(godcr.Config{
		Shards:       len(addrs),
		SafetyChecks: true,
		Transport:    tr,
	})
	defer rt.Shutdown()
	wl.register(rt)
	var out agreeCell
	if err := rt.Execute(wl.program(&out)); err != nil {
		return nil, fmt.Errorf("shard %d: %w", shard, err)
	}
	return &report{
		Shard:    shard,
		Shards:   len(addrs),
		Workload: name,
		Hash:     hashWords(rt.ControlHash()),
		Outputs:  out.get(),
		Bytes:    rt.Stats().Bytes,
	}, nil
}

// runInProcess executes the same workload on the in-process backend —
// the baseline every worker must match bit-for-bit.
func runInProcess(n int, name string) (*report, error) {
	wl, ok := workloads()[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	rt := godcr.NewRuntime(godcr.Config{Shards: n, SafetyChecks: true})
	defer rt.Shutdown()
	wl.register(rt)
	var out agreeCell
	if err := rt.Execute(wl.program(&out)); err != nil {
		return nil, err
	}
	return &report{
		Shards:   n,
		Workload: name,
		Hash:     hashWords(rt.ControlHash()),
		Outputs:  out.get(),
		Bytes:    rt.Stats().Bytes,
	}, nil
}

// reservePorts grabs n distinct loopback ports by binding and releasing
// them. The tiny close-to-rebind window is tolerable for a launcher on
// loopback; a stolen port fails the child's bind, which fails the run
// loudly rather than wrongly.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

// launch spawns n worker copies of this binary over reserved loopback
// ports and verifies them against the in-process baseline.
func launch(n int, name string, timeout time.Duration) error {
	baseline, err := runInProcess(n, name)
	if err != nil {
		return fmt.Errorf("in-process baseline: %w", err)
	}
	addrs, err := reservePorts(n)
	if err != nil {
		return fmt.Errorf("reserve ports: %w", err)
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate self: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	outs := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.CommandContext(ctx, self,
				"-shard", fmt.Sprint(i),
				"-addrs", strings.Join(addrs, ","),
				"-workload", name)
			cmd.Stderr = os.Stderr
			outs[i], errs[i] = cmd.Output()
		}(i)
	}
	wg.Wait()

	var failures []string
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			failures = append(failures, fmt.Sprintf("worker %d: %v", i, errs[i]))
			continue
		}
		var rep report
		if err := json.Unmarshal(outs[i], &rep); err != nil {
			failures = append(failures, fmt.Sprintf("worker %d: bad report: %v", i, err))
			continue
		}
		if rep.Shard != i {
			failures = append(failures, fmt.Sprintf("worker %d reported shard %d", i, rep.Shard))
		}
		if rep.Hash != baseline.Hash {
			failures = append(failures, fmt.Sprintf(
				"worker %d control hash %v, in-process %v", i, rep.Hash, baseline.Hash))
		}
		if len(rep.Outputs) != len(baseline.Outputs) {
			failures = append(failures, fmt.Sprintf(
				"worker %d has %d outputs, in-process %d", i, len(rep.Outputs), len(baseline.Outputs)))
			continue
		}
		for j := range rep.Outputs {
			// Bit-identical, not approximately equal.
			if rep.Outputs[j] != baseline.Outputs[j] {
				failures = append(failures, fmt.Sprintf(
					"worker %d output[%d] = %v, in-process %v", i, j, rep.Outputs[j], baseline.Outputs[j]))
				break
			}
		}
		if rep.Bytes == 0 {
			failures = append(failures, fmt.Sprintf("worker %d moved zero transport bytes", i))
		}
	}
	if len(failures) > 0 {
		return errors.New(strings.Join(failures, "\n"))
	}
	fmt.Printf("ok: %d processes over TCP loopback, %s bit-identical to in-process (hash %s%s, %d outputs)\n",
		n, name, baseline.Hash[0], baseline.Hash[1], len(baseline.Outputs))
	return nil
}

func main() {
	var (
		doLaunch = flag.Bool("launch", false, "spawn -n worker processes and verify against in-process")
		n        = flag.Int("n", 4, "cluster size (launcher mode)")
		shard    = flag.Int("shard", -1, "this process's shard id (worker mode)")
		addrs    = flag.String("addrs", "", "comma-separated node addresses, index = shard id (worker mode)")
		name     = flag.String("workload", "stencil", "workload: stencil or circuit")
		timeout  = flag.Duration("timeout", 60*time.Second, "launcher kill deadline")
	)
	flag.Parse()

	switch {
	case *doLaunch:
		if err := launch(*n, *name, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node:", err)
			os.Exit(1)
		}
	case *shard >= 0:
		list := strings.Split(*addrs, ",")
		if *addrs == "" || *shard >= len(list) {
			fmt.Fprintf(os.Stderr, "godcr-node: -shard %d needs -addrs with at least %d entries\n", *shard, *shard+1)
			os.Exit(2)
		}
		rep, err := runWorker(*shard, list, *name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node:", err)
			os.Exit(1)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(buf, '\n'))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
