// Command godcr-node runs one shard of a DCR cluster as its own OS
// process, with the shards wired together by the TCP transport — the
// multi-process deployment the pluggable Transport seam exists for.
//
// Worker mode (one process per shard):
//
//	godcr-node -shard 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 -workload stencil
//
// runs shard 0 of a 2-shard cluster (the cluster size is len(addrs))
// and prints a JSON record of the run's outputs and control hash. With
// -supervise the worker runs under the self-healing supervisor
// (heartbeats, watchdog, periodic checkpoints spilled to -ckpt) and
// survives peer-process deaths; -reborn marks a respawned worker so it
// announces its rebirth and the cluster restarts from checkpoints.
//
// Launcher mode (acceptance harness):
//
//	godcr-node -launch -n 4 -workload stencil
//
// reserves n loopback ports, spawns itself n times in worker mode, runs
// the same workload on the in-process backend, and demands every
// worker's outputs and ControlHash be bit-identical to it. Exit status
// 0 means the multi-process run is provably equivalent.
//
// Chaos launcher (remote supervised recovery):
//
//	godcr-node -launch -supervise -n 3 -kill 1 -seed 7 -workload stencil -steps 30
//
// additionally acts as a process supervisor: it SIGKILLs -kill randomly
// chosen workers mid-run (seeded, reproducible), respawns each victim
// with -reborn on the same address and checkpoint directory, and still
// demands bit-identical convergence against the in-process baseline.
//
// Multi-shard hosting and partial restart:
//
//	godcr-node -launch -n 4 -procs 2 -workload circuit
//	godcr-node -launch -supervise -partial -n 4 -kill 1 -workload stencil -steps 30
//
// -procs splits the n shards contiguously across fewer processes (each
// hosting several shards behind one listener — one failure domain); a
// worker can be given its group directly with -shards 2,3. -partial
// enables partial restart: a SIGKILL'd process re-executes only its
// hosted shard(s) from checkpoint while the survivors park at their
// frontier and re-serve, instead of the whole cluster rolling back.
//
// Integrity chaos:
//
//	godcr-node -launch -n 4 -corrupt 0.02 -workload stencil
//	godcr-node -launch -supervise -n 3 -kill 1 -corrupt-ckpt -workload stencil -steps 30
//	godcr-node -launch -supervise -n 4 -partition 400ms -partition-shard 2 -workload stencil -steps 30
//
// -corrupt flips one seeded bit per outbound TCP frame with the given
// probability; receivers' CRC32C checks turn every flip into a loss the
// reliable sublayer retransmits, and the launcher demands both
// bit-identical convergence and a nonzero cluster-wide CRC-rejection
// count. -corrupt-ckpt damages a SIGKILL victim's newest checkpoint
// generation before its respawn, forcing recovery through the
// generation-chain fallback. -partition isolates one shard from every
// peer for a window; the phi detectors convict it, and the supervisor
// retries until the window heals.
//
// Server mode (long-lived job server; see server.go):
//
//	godcr-node -serve -n 4 -max-jobs 2 -listen 127.0.0.1:7100
//	godcr-node -submit -server 127.0.0.1:7100 -workload logreg
//
// runs a resident multi-job host accepting a stream of submitted
// workloads (stencil, circuit, logreg) over a JSON-lines control
// socket, each as an isolated job on the shared shard pool.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"godcr"
)

// report is a worker's machine-readable verdict on stdout.
type report struct {
	Shard int `json:"shard"`
	// Hosted lists every shard id this process drove (multi-shard
	// hosting); just [Shard] for a single-shard worker.
	Hosted   []int  `json:"hosted"`
	Shards   int    `json:"shards"`
	Workload string `json:"workload"`
	// Hash is the run's ControlHash as two hex words (strings: JSON
	// numbers cannot carry uint64 exactly).
	Hash    [2]string `json:"hash"`
	Outputs []float64 `json:"outputs"`
	// Bytes is the transport's outbound byte count — nonzero on any
	// real multi-shard run.
	Bytes uint64 `json:"bytes"`
	// CorruptFrames counts inbound TCP frames this worker's receiver
	// rejected on CRC — nonzero somewhere in the cluster whenever wire
	// corruption is being injected.
	CorruptFrames uint64 `json:"corrupt_frames"`
}

func hashWords(h [2]uint64) [2]string {
	return [2]string{fmt.Sprintf("%016x", h[0]), fmt.Sprintf("%016x", h[1])}
}

// agreeCell collects one output vector per shard replica. With verify
// set it checks the replicas agree bit-for-bit (control replication
// demands it) — the in-process baseline, where every replica records
// into one cell within a single fault-free run. Worker processes leave
// verify off and take last-write-wins instead: a supervised worker re-
// runs the program body per recovery attempt, and a failed attempt's
// body can complete with garbage (futures resolve zero on abort), so
// only the final successful attempt's record may stand.
type agreeCell struct {
	mu     sync.Mutex
	vals   []float64
	set    bool
	verify bool
}

func (c *agreeCell) record(v []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.set || !c.verify {
		c.vals = append([]float64(nil), v...)
		c.set = true
		return nil
	}
	if len(c.vals) != len(v) {
		return fmt.Errorf("replica output length %d, want %d", len(v), len(c.vals))
	}
	for i := range v {
		if v[i] != c.vals[i] {
			return fmt.Errorf("replica output[%d] = %v, want %v", i, v[i], c.vals[i])
		}
	}
	return nil
}

func (c *agreeCell) get() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals
}

// taskRegistrar is the seam both deployment shapes satisfy: a workload
// registers its tasks on a single-job *godcr.Runtime (worker mode) or
// once on a resident *godcr.Host shared by every job (server mode).
type taskRegistrar interface {
	RegisterTask(name string, fn godcr.TaskFn)
}

// workload builds a program producing a per-step output vector; every
// backend and shard count must reproduce it bit-identically. steps <= 0
// selects the workload's default step count; the chaos harness raises
// it so a SIGKILL has a wide mid-run window to land in.
type workload struct {
	register     func(reg taskRegistrar)
	program      func(out *agreeCell, steps int) godcr.Program
	defaultSteps int
}

func workloads() map[string]workload {
	return map[string]workload{
		"stencil": {register: registerStencilTasks, program: stencilProgram, defaultSteps: 5},
		"circuit": {register: registerCircuitTasks, program: circuitProgram, defaultSteps: 4},
		"logreg":  {register: registerLogregTasks, program: logregProgram, defaultSteps: 6},
	}
}

func registerStencilTasks(rt taskRegistrar) {
	rt.RegisterTask("bump", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		sum := 0.0
		x.Rect().Each(func(p godcr.Point) bool {
			x.Set(p, x.At(p)+1)
			sum += x.At(p)
			return true
		})
		return sum, nil
	})
	rt.RegisterTask("smooth", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		g := tc.Region(1).Field("x")
		x.Rect().Each(func(p godcr.Point) bool {
			x.Set(p, 0.5*x.At(p)+0.25*(g.At(godcr.Pt1(p[0]-1))+g.At(godcr.Pt1(p[0]+1))))
			return true
		})
		return 0, nil
	})
}

// stencilProgram: 8 tiles × 16 cells, `steps` halo-exchange steps; the
// output vector is each step's reduced tile sum plus the final field.
func stencilProgram(out *agreeCell, steps int) godcr.Program {
	const tiles = 8
	return func(ctx *godcr.Context) error {
		var outs []float64 // per-shard-replica: declared inside the body
		r := ctx.CreateRegion(godcr.R1(0, tiles*16-1), "x")
		owned := ctx.PartitionEqual(r, tiles)
		ghost := ctx.PartitionHalo(owned, 1)
		interior := ctx.PartitionInterior(owned, 1)
		ctx.Fill(r, "x", 1)
		dom := godcr.R1(0, tiles-1)
		for s := 0; s < steps; s++ {
			fm := ctx.IndexLaunch(godcr.Launch{Task: "bump", Domain: dom,
				Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"x"}}}})
			ctx.IndexLaunch(godcr.Launch{Task: "smooth", Domain: dom,
				Reqs: []godcr.RegionReq{
					{Part: interior, Priv: godcr.ReadWrite, Fields: []string{"x"}},
					{Part: ghost, Priv: godcr.ReadOnly, Fields: []string{"x"}}}})
			outs = append(outs, fm.Reduce(godcr.ReduceAdd).Get())
		}
		outs = append(outs, ctx.InlineRead(r, "x")...)
		return out.record(outs)
	}
}

func registerCircuitTasks(rt taskRegistrar) {
	rt.RegisterTask("charge_up", func(tc *godcr.TaskContext) (float64, error) {
		acc := tc.Region(0).Field("charge")
		total := 0.0
		acc.Rect().Each(func(p godcr.Point) bool {
			acc.Fold(p, float64(tc.Point[0]+1)*0.25)
			total += float64(p[0])
			return true
		})
		return total, nil
	})
	rt.RegisterTask("update_v", func(tc *godcr.TaskContext) (float64, error) {
		v := tc.Region(0).Field("voltage")
		q := tc.Region(1).Field("charge")
		v.Rect().Each(func(p godcr.Point) bool {
			v.Set(p, v.At(p)+q.At(p))
			return true
		})
		return 0, nil
	})
}

// circuitProgram: aliased reduction partitions (every tile folds into
// the whole grid) + a future-map reduction per step; the output vector
// is each step's reduced total plus the final voltages.
func circuitProgram(out *agreeCell, steps int) godcr.Program {
	const nnodes, ntiles = 32, 8
	return func(ctx *godcr.Context) error {
		var outs []float64
		grid := godcr.R1(0, nnodes-1)
		tiles := godcr.R1(0, ntiles-1)
		nodes := ctx.CreateRegion(grid, "voltage", "charge")
		owned := ctx.PartitionEqual(nodes, ntiles)
		rects := make([]godcr.Rect, ntiles)
		for i := range rects {
			rects[i] = grid
		}
		all := ctx.PartitionCustom(nodes, tiles, rects)
		ctx.Fill(nodes, "voltage", 1.0)
		for step := 0; step < steps; step++ {
			ctx.Fill(nodes, "charge", 0)
			fm := ctx.IndexLaunch(godcr.Launch{
				Task: "charge_up", Domain: tiles,
				Reqs: []godcr.RegionReq{{Part: all, Priv: godcr.Reduce, RedOp: godcr.ReduceAdd, Fields: []string{"charge"}}},
			})
			ctx.IndexLaunch(godcr.Launch{
				Task: "update_v", Domain: tiles,
				Reqs: []godcr.RegionReq{
					{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"voltage"}},
					{Part: owned, Priv: godcr.ReadOnly, Fields: []string{"charge"}},
				},
			})
			outs = append(outs, fm.Reduce(godcr.ReduceAdd).Get())
		}
		outs = append(outs, ctx.InlineRead(nodes, "voltage")...)
		return out.record(outs)
	}
}

func registerLogregTasks(rt taskRegistrar) {
	rt.RegisterTask("lr_init", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		y := tc.Region(0).Field("y")
		x.Rect().Each(func(p godcr.Point) bool {
			x.Set(p, float64((p[0]*37)%17)/8.0-1.0)
			if p[0]%3 == 0 {
				y.Set(p, 1)
			} else {
				y.Set(p, -1)
			}
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("lr_grad", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		y := tc.Region(0).Field("y")
		w := tc.Args[0]
		g := 0.0
		x.Rect().Each(func(p godcr.Point) bool {
			xv, yv := x.At(p), y.At(p)
			g += -yv * xv / (1 + math.Exp(yv*w*xv))
			return true
		})
		return g, nil
	})
}

// logregProgram: logistic regression by gradient descent, where each
// step's weight is a future-map reduction of per-tile gradients — the
// workload whose control flow depends on values computed by earlier
// tasks. The output vector is the weight trajectory.
func logregProgram(out *agreeCell, steps int) godcr.Program {
	const nsamples, ntiles = 48, 8
	return func(ctx *godcr.Context) error {
		grid := godcr.R1(0, nsamples-1)
		tiles := godcr.R1(0, ntiles-1)
		data := ctx.CreateRegion(grid, "x", "y")
		owned := ctx.PartitionEqual(data, ntiles)
		ctx.IndexLaunch(godcr.Launch{
			Task: "lr_init", Domain: tiles,
			Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.WriteDiscard, Fields: []string{"x", "y"}}},
		})
		w := 0.0
		traj := make([]float64, 0, steps)
		for step := 0; step < steps; step++ {
			fm := ctx.IndexLaunch(godcr.Launch{
				Task: "lr_grad", Domain: tiles,
				Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.ReadOnly, Fields: []string{"x", "y"}}},
				Args: []float64{w},
			})
			w -= 0.5 * fm.Reduce(godcr.ReduceAdd).Get() / float64(nsamples)
			traj = append(traj, w)
		}
		return out.record(traj)
	}
}

// workerOpts configures one worker process's run.
type workerOpts struct {
	shard int
	// hosted lists every shard id this process drives (multi-shard
	// hosting: one process, one failure domain); empty means just
	// shard. Every hosted id must map to this process's address in
	// addrs.
	hosted   []int
	addrs    []string
	workload string
	steps    int
	// supervise runs the shard under RunSupervised with heartbeats, the
	// watchdog, and checkpoints spilled to ckptDir.
	supervise bool
	// partial enables partial restart: a single-shard failure re-executes
	// only on the failed shard while survivors park and re-serve.
	partial bool
	ckptDir string
	// reborn marks a respawned worker: it announces its rebirth so the
	// survivors abandon their in-flight attempt and the whole cluster
	// resumes from checkpoints in a fresh epoch.
	reborn bool
	// codec names the payload codec on the TCP wire: "binary" (the
	// default) or "gob". Must match across the cluster's processes.
	codec string
	// corrupt, when > 0, flips one seeded bit in outbound TCP frames
	// with this probability; the receivers' CRCs turn every flip into a
	// recoverable loss.
	corrupt   float64
	faultSeed uint64
	// partitionShard (with partitionDur > 0) isolates that shard from
	// every peer for partitionDur from process start: all workers
	// install the same two-way partition windows, so whichever side
	// would send over a severed link drops the traffic locally.
	partitionShard int
	partitionDur   time.Duration
}

// faultPlan builds the worker's fault plan from the corruption and
// partition knobs, or nil when both are off.
func (o workerOpts) faultPlan() *godcr.FaultPlan {
	if o.corrupt <= 0 && (o.partitionShard < 0 || o.partitionDur <= 0) {
		return nil
	}
	plan := &godcr.FaultPlan{Seed: o.faultSeed, Corrupt: o.corrupt}
	if o.partitionShard >= 0 && o.partitionDur > 0 {
		for s := range o.addrs {
			if s == o.partitionShard {
				continue
			}
			plan.Partitions = append(plan.Partitions, godcr.PartitionWindow{
				From:     godcr.NodeID(o.partitionShard),
				To:       godcr.NodeID(s),
				Duration: o.partitionDur,
			})
		}
	}
	return plan
}

// runWorker executes one shard over TCP and returns its report.
func runWorker(o workerOpts) (*report, error) {
	wl, ok := workloads()[o.workload]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", o.workload)
	}
	steps := o.steps
	if steps <= 0 {
		steps = wl.defaultSteps
	}
	hosted := o.hosted
	if len(hosted) == 0 {
		hosted = []int{o.shard}
	}
	ids := make([]godcr.NodeID, len(hosted))
	for i, s := range hosted {
		ids[i] = godcr.NodeID(s)
	}
	var codec godcr.PayloadCodec
	switch o.codec {
	case "", "binary":
		codec = godcr.CodecBinary
	case "gob":
		codec = godcr.CodecGob
	default:
		return nil, fmt.Errorf("unknown codec %q (want binary or gob)", o.codec)
	}
	tr, err := godcr.NewTCPTransport(godcr.TCPOptions{
		Self:   godcr.NodeID(o.shard),
		Shards: ids,
		Addrs:  o.addrs,
		Codec:  codec,
	})
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	cfg := godcr.Config{
		Shards:       len(o.addrs),
		SafetyChecks: true,
		Transport:    tr,
		Faults:       o.faultPlan(),
	}
	if cfg.Faults != nil && !o.supervise {
		// Fail loudly with a StallError snapshot well before the
		// launcher's kill deadline if injected faults wedge the run.
		cfg.OpDeadline = 30 * time.Second
	}
	if o.supervise {
		cfg.CheckpointEvery = 4
		cfg.CheckpointDir = o.ckptDir
		cfg.HeartbeatEvery = 5 * time.Millisecond
		cfg.OpDeadline = 10 * time.Second
		cfg.PartialRestart = o.partial
	}
	rt := godcr.NewRuntime(cfg)
	defer rt.Shutdown()
	wl.register(rt)
	var out agreeCell
	program := wl.program(&out, steps)
	if o.supervise {
		if o.reborn {
			// The spilled-checkpoint path announces rebirth on its own;
			// the explicit call covers respawned workers whose shard never
			// spilled (only the journal recorder's process writes cuts).
			rt.AnnounceRebirth()
		}
		// Every worker shares the jitter seed so backoff schedules stay
		// aligned across processes: a worker sleeping out a longer backoff
		// than its peers looks dead to their phi detectors.
		err = rt.RunSupervised(program, godcr.SupervisorPolicy{
			MaxRestarts: 10,
			Backoff:     10 * time.Millisecond,
			BackoffCap:  50 * time.Millisecond,
			JitterSeed:  1,
		})
	} else {
		err = rt.Execute(program)
	}
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", o.shard, err)
	}
	return &report{
		Shard:         o.shard,
		Hosted:        hosted,
		Shards:        len(o.addrs),
		Workload:      o.workload,
		Hash:          hashWords(rt.ControlHash()),
		Outputs:       out.get(),
		Bytes:         rt.Stats().Bytes,
		CorruptFrames: tr.Stats().CorruptFrames,
	}, nil
}

// runInProcess executes the same workload on the in-process backend —
// the baseline every worker must match bit-for-bit.
func runInProcess(n int, name string, steps int) (*report, error) {
	wl, ok := workloads()[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	if steps <= 0 {
		steps = wl.defaultSteps
	}
	rt := godcr.NewRuntime(godcr.Config{Shards: n, SafetyChecks: true})
	defer rt.Shutdown()
	wl.register(rt)
	out := agreeCell{verify: true}
	if err := rt.Execute(wl.program(&out, steps)); err != nil {
		return nil, err
	}
	return &report{
		Shards:   n,
		Workload: name,
		Hash:     hashWords(rt.ControlHash()),
		Outputs:  out.get(),
		Bytes:    rt.Stats().Bytes,
	}, nil
}

// reservePorts grabs n distinct loopback ports by binding and releasing
// them. The tiny close-to-rebind window is tolerable for a launcher on
// loopback; a stolen port fails the child's bind, which fails the run
// loudly rather than wrongly.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

// procRegistry tracks the live worker processes (by process index) so
// the chaos killer can pick victims and the respawn loops can
// unregister the dead.
type procRegistry struct {
	mu    sync.Mutex
	procs map[int]*os.Process
}

func newProcRegistry() *procRegistry {
	return &procRegistry{procs: make(map[int]*os.Process)}
}

func (r *procRegistry) set(pi int, p *os.Process) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.procs[pi] = p
}

func (r *procRegistry) clear(pi int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.procs, pi)
}

// pick returns a live victim chosen by idx over the registry's process
// indices in ascending order, or nil if no worker is live.
func (r *procRegistry) pick(idx int) (int, *os.Process) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.procs) == 0 {
		return -1, nil
	}
	pis := make([]int, 0, len(r.procs))
	for s := range r.procs {
		pis = append(pis, s)
	}
	for i := 1; i < len(pis); i++ { // insertion sort: n is tiny
		for j := i; j > 0 && pis[j] < pis[j-1]; j-- {
			pis[j], pis[j-1] = pis[j-1], pis[j]
		}
	}
	s := pis[idx%len(pis)]
	return s, r.procs[s]
}

// launchOpts configures the launcher harness.
type launchOpts struct {
	n        int
	workload string
	steps    int
	timeout  time.Duration
	// procs is the number of worker processes the n shards are split
	// across (contiguously; 0 or >= n means one process per shard).
	// With procs < n each process hosts several shards behind one
	// listener — one failure domain per process.
	procs int
	// supervise launches workers under RunSupervised with per-worker
	// checkpoint directories and respawns workers that die by signal.
	supervise bool
	// partial enables partial restart in the workers: a single-process
	// SIGKILL re-executes only its hosted shard(s) from checkpoint while
	// the surviving processes park at their frontier.
	partial bool
	// kills is the number of seeded SIGKILLs to deliver mid-run
	// (supervise mode only).
	kills int
	seed  int64
	// codec is the payload codec name forwarded to every worker.
	codec string
	// corrupt forwards wire-corruption probability to every worker; the
	// launcher then demands at least one CRC rejection cluster-wide.
	corrupt float64
	// partition/partitionShard forward a timed full isolation of one
	// shard to every worker (supervise mode only: severed traffic is
	// unrecoverable without the supervisor's retry loop).
	partition      time.Duration
	partitionShard int
	// corruptCkpt flips one bit in a respawned victim's newest
	// checkpoint generation before the respawn, forcing the reborn
	// worker onto the generation-chain fallback (supervise mode only).
	corruptCkpt bool
}

// faultArgs renders the launcher's fault knobs as worker flags; pi
// salts the per-worker wire-corruption seed.
func (o launchOpts) faultArgs(pi int) []string {
	var args []string
	if o.corrupt > 0 {
		args = append(args,
			"-corrupt", fmt.Sprint(o.corrupt),
			"-fault-seed", fmt.Sprint(uint64(o.seed)*1000+uint64(pi)))
	}
	if o.partition > 0 && o.partitionShard >= 0 {
		args = append(args,
			"-partition", o.partition.String(),
			"-partition-shard", fmt.Sprint(o.partitionShard))
	}
	return args
}

// splitShards deals n shard ids into procs contiguous groups, earlier
// groups taking the remainder: splitShards(4, 2) = [[0 1] [2 3]].
func splitShards(n, procs int) [][]int {
	if procs <= 0 || procs > n {
		procs = n
	}
	groups := make([][]int, procs)
	next := 0
	for pi := range groups {
		size := n / procs
		if pi < n%procs {
			size++
		}
		for j := 0; j < size; j++ {
			groups[pi] = append(groups[pi], next)
			next++
		}
	}
	return groups
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

func parseShardList(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		var x int
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &x); err != nil || x < 0 {
			return nil, fmt.Errorf("bad shard id %q", p)
		}
		out = append(out, x)
	}
	return out, nil
}

// maxRespawns bounds how many times the launcher revives one worker.
const maxRespawns = 5

// superviseWorker runs one worker process (hosting the given shard
// group), respawning it (with -reborn) when it dies by signal, and
// returns the surviving process's stdout. pi is the process index used
// for the chaos-kill registry.
func superviseWorker(ctx context.Context, self string, o launchOpts, pi int, group []int, addrs []string, ckptDir string, reg *procRegistry) ([]byte, error) {
	reborn := false
	for spawn := 0; ; spawn++ {
		args := []string{
			"-shards", joinInts(group),
			"-addrs", strings.Join(addrs, ","),
			"-workload", o.workload,
			"-steps", fmt.Sprint(o.steps),
			"-supervise",
			"-ckpt", ckptDir,
		}
		if o.partial {
			args = append(args, "-partial")
		}
		if o.codec != "" {
			args = append(args, "-codec", o.codec)
		}
		args = append(args, o.faultArgs(pi)...)
		if reborn {
			args = append(args, "-reborn")
			if o.corruptCkpt {
				// Damage the newest spilled generation before the rebirth:
				// the worker must fall back to an older valid generation
				// (or a cold start) and still converge bit-identically.
				if path, err := godcr.CorruptCheckpointFile(ckptDir, uint64(o.seed)+uint64(spawn)); err != nil {
					fmt.Fprintf(os.Stderr, "godcr-node: worker %d: corrupt checkpoint: %v\n", pi, err)
				} else {
					fmt.Fprintf(os.Stderr, "godcr-node: worker %d: flipped a bit in %s before respawn\n", pi, path)
				}
			}
		}
		cmd := exec.CommandContext(ctx, self, args...)
		cmd.Stderr = os.Stderr
		var out bytes.Buffer
		cmd.Stdout = &out
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("worker %d: start: %w", pi, err)
		}
		reg.set(pi, cmd.Process)
		err := cmd.Wait()
		reg.clear(pi)
		if err == nil {
			return out.Bytes(), nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("worker %d: %w", pi, ctx.Err())
		}
		// Respawn only signal deaths (the chaos killer's SIGKILL); a
		// worker that exited on its own reported a real failure.
		if cmd.ProcessState == nil || cmd.ProcessState.ExitCode() != -1 {
			return nil, fmt.Errorf("worker %d: %w", pi, err)
		}
		if spawn >= maxRespawns {
			return nil, fmt.Errorf("worker %d: respawn budget exhausted (%d), last: %w", pi, maxRespawns, err)
		}
		fmt.Fprintf(os.Stderr, "godcr-node: worker %d (shards %s) died by signal, respawning as reborn\n", pi, joinInts(group))
		reborn = true
		time.Sleep(20 * time.Millisecond)
	}
}

// chaosKill delivers o.kills seeded SIGKILLs to randomly chosen live
// workers, spread over the early part of the run.
func chaosKill(o launchOpts, reg *procRegistry, done <-chan struct{}) {
	rng := rand.New(rand.NewSource(o.seed))
	for k := 0; k < o.kills; k++ {
		delay := 30*time.Millisecond + time.Duration(rng.Intn(120))*time.Millisecond
		select {
		case <-done:
			return
		case <-time.After(delay):
		}
		pi, proc := reg.pick(rng.Intn(1 << 30))
		if proc == nil {
			fmt.Fprintf(os.Stderr, "godcr-node: chaos kill %d: no live worker (run already finished)\n", k)
			continue
		}
		if err := proc.Kill(); err != nil {
			fmt.Fprintf(os.Stderr, "godcr-node: chaos kill %d: worker %d: %v\n", k, pi, err)
			continue
		}
		fmt.Fprintf(os.Stderr, "godcr-node: chaos kill %d: SIGKILL worker %d\n", k, pi)
	}
}

// verifyReports checks every worker process's JSON report against the
// in-process baseline, bit-for-bit. groups[i] is the shard group worker
// i was asked to host.
func verifyReports(baseline *report, groups [][]int, outs [][]byte, errs []error) []string {
	var failures []string
	for i := range outs {
		if errs[i] != nil {
			failures = append(failures, fmt.Sprintf("worker %d: %v", i, errs[i]))
			continue
		}
		var rep report
		if err := json.Unmarshal(outs[i], &rep); err != nil {
			failures = append(failures, fmt.Sprintf("worker %d: bad report: %v", i, err))
			continue
		}
		if rep.Shard != groups[i][0] {
			failures = append(failures, fmt.Sprintf("worker %d reported shard %d, want %d", i, rep.Shard, groups[i][0]))
		}
		if joinInts(rep.Hosted) != joinInts(groups[i]) {
			failures = append(failures, fmt.Sprintf("worker %d hosted shards %v, want %v", i, rep.Hosted, groups[i]))
		}
		if rep.Hash != baseline.Hash {
			failures = append(failures, fmt.Sprintf(
				"worker %d control hash %v, in-process %v", i, rep.Hash, baseline.Hash))
		}
		if len(rep.Outputs) != len(baseline.Outputs) {
			failures = append(failures, fmt.Sprintf(
				"worker %d has %d outputs, in-process %d", i, len(rep.Outputs), len(baseline.Outputs)))
			continue
		}
		for j := range rep.Outputs {
			// Bit-identical, not approximately equal.
			if rep.Outputs[j] != baseline.Outputs[j] {
				failures = append(failures, fmt.Sprintf(
					"worker %d output[%d] = %v, in-process %v", i, j, rep.Outputs[j], baseline.Outputs[j]))
				break
			}
		}
		if rep.Bytes == 0 {
			failures = append(failures, fmt.Sprintf("worker %d moved zero transport bytes", i))
		}
	}
	return failures
}

// launch spawns o.n worker copies of this binary over reserved loopback
// ports and verifies them against the in-process baseline. In supervise
// mode it also plays process supervisor: chaos kills, respawns, and
// still demands bit-identical convergence.
func launch(o launchOpts) error {
	if o.partition > 0 && !o.supervise {
		return errors.New("-partition needs -supervise: severed traffic is only recovered by the supervisor's retry loop")
	}
	baseline, err := runInProcess(o.n, o.workload, o.steps)
	if err != nil {
		return fmt.Errorf("in-process baseline: %w", err)
	}
	groups := splitShards(o.n, o.procs)
	paddrs, err := reservePorts(len(groups))
	if err != nil {
		return fmt.Errorf("reserve ports: %w", err)
	}
	// Every shard a process hosts maps to that process's one listener.
	addrs := make([]string, o.n)
	for pi, g := range groups {
		for _, s := range g {
			addrs[s] = paddrs[pi]
		}
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate self: %w", err)
	}
	var ckptRoot string
	if o.supervise {
		if ckptRoot, err = os.MkdirTemp("", "godcr-chaos-*"); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
		defer os.RemoveAll(ckptRoot)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	reg := newProcRegistry()
	outs := make([][]byte, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for pi := range groups {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			if o.supervise {
				ckptDir := filepath.Join(ckptRoot, fmt.Sprintf("worker-%d", pi))
				outs[pi], errs[pi] = superviseWorker(ctx, self, o, pi, groups[pi], addrs, ckptDir, reg)
				return
			}
			args := []string{
				"-shards", joinInts(groups[pi]),
				"-addrs", strings.Join(addrs, ","),
				"-workload", o.workload,
				"-steps", fmt.Sprint(o.steps),
			}
			if o.codec != "" {
				args = append(args, "-codec", o.codec)
			}
			args = append(args, o.faultArgs(pi)...)
			cmd := exec.CommandContext(ctx, self, args...)
			cmd.Stderr = os.Stderr
			outs[pi], errs[pi] = cmd.Output()
		}(pi)
	}
	done := make(chan struct{})
	if o.supervise && o.kills > 0 {
		go chaosKill(o, reg, done)
	}
	wg.Wait()
	close(done)

	if failures := verifyReports(baseline, groups, outs, errs); len(failures) > 0 {
		return errors.New(strings.Join(failures, "\n"))
	}
	if o.corrupt > 0 {
		// Bit-identical convergence proves recovery; the counter proves
		// there was something to recover from.
		var corrupt uint64
		for _, b := range outs {
			var rep report
			if json.Unmarshal(b, &rep) == nil {
				corrupt += rep.CorruptFrames
			}
		}
		if corrupt == 0 {
			return fmt.Errorf("corrupt=%v injected no CRC rejections across the cluster", o.corrupt)
		}
		fmt.Printf("wire corruption: %d frame(s) rejected on CRC and recovered\n", corrupt)
	}
	mode := "processes over TCP loopback"
	if o.supervise {
		restart := "full restart"
		if o.partial {
			restart = "partial restart"
		}
		mode = fmt.Sprintf("supervised processes over TCP loopback (%s, %d chaos kill(s), seed %d)", restart, o.kills, o.seed)
	}
	fmt.Printf("ok: %d shard(s) on %d %s, %s bit-identical to in-process (hash %s%s, %d outputs)\n",
		o.n, len(groups), mode, o.workload, baseline.Hash[0], baseline.Hash[1], len(baseline.Outputs))
	return nil
}

func main() {
	var (
		doLaunch  = flag.Bool("launch", false, "spawn worker processes and verify against in-process")
		n         = flag.Int("n", 4, "cluster size in shards (launcher mode)")
		procs     = flag.Int("procs", 0, "worker processes to split the shards across (launcher mode; 0 = one per shard)")
		shard     = flag.Int("shard", -1, "this process's shard id (worker mode)")
		shardsArg = flag.String("shards", "", "comma-separated shard ids this process hosts (worker mode; first is the lead shard)")
		addrs     = flag.String("addrs", "", "comma-separated node addresses, index = shard id (worker mode)")
		name      = flag.String("workload", "stencil", "workload: stencil, circuit, or logreg")
		steps     = flag.Int("steps", 0, "workload steps (0 = workload default)")
		timeout   = flag.Duration("timeout", 60*time.Second, "launcher kill deadline")
		supervise = flag.Bool("supervise", false, "run under the self-healing supervisor (worker: RunSupervised; launcher: respawn dead workers)")
		partial   = flag.Bool("partial", false, "with -supervise: recover single-shard failures by partial restart (survivors park at their frontier)")
		ckpt      = flag.String("ckpt", "", "checkpoint spill directory (worker mode, with -supervise)")
		reborn    = flag.Bool("reborn", false, "this worker is a respawn: announce rebirth so the cluster restarts from checkpoints")
		kills     = flag.Int("kill", 0, "SIGKILL this many randomly chosen workers mid-run (launcher mode, with -supervise)")
		seed      = flag.Int64("seed", 1, "chaos kill RNG seed (launcher mode)")
		codecName = flag.String("codec", "binary", "payload codec on the TCP wire: binary or gob")
		corrupt   = flag.Float64("corrupt", 0, "probability of flipping one bit in each outbound TCP frame")
		faultSeed = flag.Uint64("fault-seed", 1, "wire-corruption RNG seed (worker mode)")
		partition = flag.Duration("partition", 0, "isolate -partition-shard from every peer for this long from process start")
		partShard = flag.Int("partition-shard", -1, "shard to isolate behind the -partition window")
		corrCkpt  = flag.Bool("corrupt-ckpt", false, "flip one bit in a victim's newest checkpoint generation before each respawn (launcher mode, with -supervise -kill)")
		doServe   = flag.Bool("serve", false, "run as a long-lived job server: a resident host accepting submitted jobs over a JSON-lines control socket")
		listen    = flag.String("listen", "127.0.0.1:0", "control-socket listen address (server mode)")
		maxJobs   = flag.Int("max-jobs", 2, "jobs running concurrently on the resident host; the rest queue FIFO (server mode)")
		doSubmit  = flag.Bool("submit", false, "submit one job to a running server, wait, and print its result (client mode)")
		server    = flag.String("server", "", "job server control address (client mode)")
		statsAddr = flag.String("stats", "", "HTTP listen address for the live /stats observability endpoint (server mode; empty = off)")
		doSmoke   = flag.Bool("stats-smoke", false, "boot a supervised server, submit a job, scrape /stats mid-run, and validate its schema (CI smoke)")
	)
	flag.Parse()

	hosted := []int(nil)
	if *shardsArg != "" {
		var err error
		if hosted, err = parseShardList(*shardsArg); err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node: -shards:", err)
			os.Exit(2)
		}
		if *shard < 0 {
			*shard = hosted[0]
		}
	}

	switch {
	case *doSmoke:
		if err := runStatsSmoke(*n); err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node: stats smoke:", err)
			os.Exit(1)
		}
	case *doServe:
		err := runServe(serveOpts{
			shards: *n, maxJobs: *maxJobs, listen: *listen,
			supervise: *supervise, ckptDir: *ckpt,
			statsAddr: *statsAddr,
		}, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node:", err)
			os.Exit(1)
		}
	case *doSubmit:
		if *server == "" {
			fmt.Fprintln(os.Stderr, "godcr-node: -submit needs -server")
			os.Exit(2)
		}
		if err := runSubmit(*server, *name, *steps); err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node:", err)
			os.Exit(1)
		}
	case *doLaunch:
		err := launch(launchOpts{
			n: *n, workload: *name, steps: *steps, timeout: *timeout, procs: *procs,
			supervise: *supervise, partial: *partial, kills: *kills, seed: *seed,
			codec: *codecName, corrupt: *corrupt,
			partition: *partition, partitionShard: *partShard, corruptCkpt: *corrCkpt,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node:", err)
			os.Exit(1)
		}
	case *shard >= 0:
		list := strings.Split(*addrs, ",")
		if *addrs == "" || *shard >= len(list) {
			fmt.Fprintf(os.Stderr, "godcr-node: -shard %d needs -addrs with at least %d entries\n", *shard, *shard+1)
			os.Exit(2)
		}
		rep, err := runWorker(workerOpts{
			shard: *shard, hosted: hosted, addrs: list, workload: *name, steps: *steps,
			supervise: *supervise, partial: *partial, ckptDir: *ckpt, reborn: *reborn,
			codec: *codecName, corrupt: *corrupt, faultSeed: *faultSeed,
			partitionShard: *partShard, partitionDur: *partition,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node:", err)
			os.Exit(1)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "godcr-node:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(buf, '\n'))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
