// -stats-smoke: a self-contained CI probe for the observability
// plane. It boots a supervised job server with the /stats endpoint on
// an ephemeral port, submits a job, scrapes /stats over real HTTP
// while the job is in flight, and validates every scrape against the
// schema the server test asserts — then once more after the job
// completes, checking the timer tree actually accumulated stage time.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"
)

func runStatsSmoke(shards int) error {
	ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	statsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ctlLn.Close()
		return err
	}
	ckptDir, err := os.MkdirTemp("", "godcr-smoke-*")
	if err != nil {
		ctlLn.Close()
		statsLn.Close()
		return err
	}
	defer os.RemoveAll(ckptDir)

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- runServe(serveOpts{
			shards: shards, maxJobs: 2,
			supervise: true, ckptDir: ckptDir,
			statsLn: statsLn,
		}, ctlLn)
	}()

	ctl, err := net.Dial("tcp", ctlLn.Addr().String())
	if err != nil {
		return err
	}
	defer ctl.Close()
	enc := json.NewEncoder(ctl)
	dec := json.NewDecoder(ctl)
	request := func(req ctlRequest) (ctlReply, error) {
		var reply ctlReply
		if err := enc.Encode(req); err != nil {
			return reply, err
		}
		if err := dec.Decode(&reply); err != nil {
			return reply, err
		}
		if reply.Error != "" {
			return reply, errors.New(reply.Error)
		}
		return reply, nil
	}

	scrape := func() ([]byte, error) {
		resp, err := http.Get(fmt.Sprintf("http://%s/stats", statsLn.Addr()))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("/stats returned %s", resp.Status)
		}
		doc, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		return doc, validateStats(doc)
	}

	// The endpoint must be schema-valid before any job exists...
	if _, err := scrape(); err != nil {
		return fmt.Errorf("pre-job scrape: %w", err)
	}
	// ...and stay valid while a job is live: submit without waiting,
	// then scrape continuously until the job finishes.
	submitted, err := request(ctlRequest{Op: "submit", Workload: "stencil", Steps: 24})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	midScrapes := 0
	done := make(chan error, 1)
	go func() {
		_, err := request(ctlRequest{Op: "result", Job: submitted.Job.ID, Wait: true})
		done <- err
	}()
scrapeLoop:
	for {
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("job %d: %w", submitted.Job.ID, err)
			}
			break scrapeLoop
		default:
			if _, err := scrape(); err != nil {
				return fmt.Errorf("mid-run scrape: %w", err)
			}
			midScrapes++
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Final scrape: the completed job's counters and timer tree must
	// show the run happened.
	doc, err := scrape()
	if err != nil {
		return fmt.Errorf("final scrape: %w", err)
	}
	var final statsReply
	if err := json.Unmarshal(doc, &final); err != nil {
		return err
	}
	if len(final.Jobs) != 1 || final.Jobs[0].State != jobDone {
		return fmt.Errorf("final stats: job not done: %s", doc)
	}
	if js := final.Jobs[0]; js.Stats == nil || js.Stats.PointTasks == 0 {
		return errors.New("final stats: job counters empty")
	}
	pt := final.Timers.Find("execute/point")
	if pt == nil || pt.Count == 0 {
		return errors.New("final stats: timer tree has no execute/point samples")
	}
	if _, err := request(ctlRequest{Op: "shutdown"}); err != nil {
		return err
	}
	if err := <-serveErr; err != nil {
		return fmt.Errorf("server: %w", err)
	}
	fmt.Printf("stats smoke ok: %d mid-run scrape(s), %d point task(s), %d timed stages\n",
		midScrapes, final.Jobs[0].Stats.PointTasks, len(final.Timers.Children))
	return nil
}
