// Server mode: godcr-node as a long-lived job server. Instead of
// running one workload and exiting, the process builds a resident
// godcr.Host — cluster, task registry, failure detector — and accepts a
// stream of submitted jobs over a JSON-lines TCP control socket. Each
// admitted job becomes an isolated Host.NewJob runtime multiplexed over
// the same shard pool: jobs run concurrently (up to -max-jobs), and one
// job's failure or chaos kill never touches another's traffic.
//
//	godcr-node -serve -n 4 -max-jobs 2 -listen 127.0.0.1:7100
//	godcr-node -submit -server 127.0.0.1:7100 -workload logreg -steps 6
//
// The control protocol is one JSON object per line, in either
// direction:
//
//	{"op":"submit","workload":"stencil","steps":12,"wait":true}
//	{"op":"status","job":3}
//	{"op":"result","job":3,"wait":true}
//	{"op":"list"}
//	{"op":"shutdown"}
//
// Admission is fair FIFO: jobs start in submission order, with at most
// -max-jobs running at once; the rest queue. A completed job's reply
// carries its outputs and ControlHash — bit-identical to the same
// workload run solo, which the server test asserts.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"godcr"
)

// jobState is a submitted job's lifecycle phase.
type jobState string

const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// jobRecord is one submitted job's public state, marshaled into status
// and result replies.
type jobRecord struct {
	ID       uint64    `json:"job"`
	Workload string    `json:"workload"`
	Steps    int       `json:"steps"`
	State    jobState  `json:"state"`
	Error    string    `json:"error,omitempty"`
	Hash     [2]string `json:"hash,omitempty"`
	Outputs  []float64 `json:"outputs,omitempty"`

	done chan struct{}
}

// ctlRequest is one control-socket request line.
type ctlRequest struct {
	Op       string `json:"op"`
	Workload string `json:"workload,omitempty"`
	Steps    int    `json:"steps,omitempty"`
	// Wait blocks a submit or result reply until the job finishes.
	Wait bool   `json:"wait,omitempty"`
	Job  uint64 `json:"job,omitempty"`
}

// ctlReply is one control-socket reply line.
type ctlReply struct {
	OK    bool         `json:"ok"`
	Error string       `json:"error,omitempty"`
	Job   *jobRecord   `json:"job,omitempty"`
	Jobs  []*jobRecord `json:"jobs,omitempty"`
}

// serveOpts configures the job server.
type serveOpts struct {
	shards  int
	maxJobs int
	listen  string
	// supervise runs each job under RunSupervised with periodic
	// checkpoints spilled under ckptDir/job-<id>.
	supervise bool
	ckptDir   string
}

// jobServer multiplexes submitted jobs over one resident host.
type jobServer struct {
	host *godcr.Host
	opts serveOpts

	mu   sync.Mutex
	jobs map[uint64]*jobRecord
	next uint64

	// admit is the FIFO admission queue; the dispatcher starts jobs in
	// submission order, at most maxJobs at once (slots).
	admit chan *jobRecord
	slots chan struct{}

	quit     chan struct{}
	quitOnce sync.Once
	running  sync.WaitGroup
}

func newJobServer(o serveOpts) *jobServer {
	if o.maxJobs <= 0 {
		o.maxJobs = 2
	}
	cfg := godcr.Config{Shards: o.shards, SafetyChecks: true}
	if o.supervise {
		cfg.CheckpointEvery = 4
		cfg.CheckpointDir = o.ckptDir
		cfg.OpDeadline = 30 * time.Second
	}
	h := godcr.NewHost(cfg)
	// Every workload's tasks are registered once on the resident host,
	// before anything executes; jobs share the registry.
	for _, wl := range workloads() {
		wl.register(h)
	}
	return &jobServer{
		host:  h,
		opts:  o,
		jobs:  make(map[uint64]*jobRecord),
		admit: make(chan *jobRecord, 1024),
		slots: make(chan struct{}, o.maxJobs),
		quit:  make(chan struct{}),
	}
}

// submit enqueues a job and returns its record.
func (s *jobServer) submit(name string, steps int) (*jobRecord, error) {
	wl, ok := workloads()[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	if steps <= 0 {
		steps = wl.defaultSteps
	}
	s.mu.Lock()
	s.next++
	rec := &jobRecord{
		ID: s.next, Workload: name, Steps: steps,
		State: jobQueued, done: make(chan struct{}),
	}
	s.jobs[rec.ID] = rec
	s.mu.Unlock()
	select {
	case s.admit <- rec:
		return rec, nil
	default:
		s.mu.Lock()
		delete(s.jobs, rec.ID)
		s.mu.Unlock()
		return nil, errors.New("admission queue full")
	}
}

// dispatcher starts queued jobs in FIFO order, holding each until a
// concurrency slot frees up.
func (s *jobServer) dispatcher() {
	for {
		var rec *jobRecord
		select {
		case rec = <-s.admit:
		case <-s.quit:
			return
		}
		select {
		case s.slots <- struct{}{}:
		case <-s.quit:
			s.finish(rec, nil, [2]uint64{}, errors.New("server shut down before the job started"))
			return
		}
		s.running.Add(1)
		go func(rec *jobRecord) {
			defer s.running.Done()
			defer func() { <-s.slots }()
			s.runJob(rec)
		}(rec)
	}
}

// runJob executes one admitted job on its own Host.NewJob runtime.
func (s *jobServer) runJob(rec *jobRecord) {
	s.mu.Lock()
	rec.State = jobRunning
	s.mu.Unlock()
	wl := workloads()[rec.Workload]
	rt := s.host.NewJob(rec.ID)
	defer rt.Shutdown()
	var out agreeCell
	program := wl.program(&out, rec.Steps)
	var err error
	if s.opts.supervise {
		err = rt.RunSupervised(program, godcr.SupervisorPolicy{
			MaxRestarts: 6,
			Backoff:     5 * time.Millisecond,
			BackoffCap:  50 * time.Millisecond,
			JitterSeed:  rec.ID,
		})
	} else {
		err = rt.Execute(program)
	}
	s.finish(rec, out.get(), rt.ControlHash(), err)
}

// finish publishes a job's terminal state and wakes result waiters.
func (s *jobServer) finish(rec *jobRecord, outputs []float64, hash [2]uint64, err error) {
	s.mu.Lock()
	if err != nil {
		rec.State = jobFailed
		rec.Error = err.Error()
	} else {
		rec.State = jobDone
		rec.Hash = hashWords(hash)
		rec.Outputs = outputs
	}
	s.mu.Unlock()
	close(rec.done)
}

// snapshot copies a record for marshaling outside the lock.
func (s *jobServer) snapshot(rec *jobRecord) *jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *rec
	cp.Outputs = append([]float64(nil), rec.Outputs...)
	cp.done = nil
	return &cp
}

func (s *jobServer) lookup(id uint64) *jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handle serves one control request.
func (s *jobServer) handle(req ctlRequest) ctlReply {
	switch req.Op {
	case "submit":
		rec, err := s.submit(req.Workload, req.Steps)
		if err != nil {
			return ctlReply{Error: err.Error()}
		}
		if req.Wait {
			<-rec.done
		}
		return ctlReply{OK: true, Job: s.snapshot(rec)}
	case "status", "result":
		rec := s.lookup(req.Job)
		if rec == nil {
			return ctlReply{Error: fmt.Sprintf("unknown job %d", req.Job)}
		}
		if req.Op == "result" && req.Wait {
			<-rec.done
		}
		return ctlReply{OK: true, Job: s.snapshot(rec)}
	case "list":
		s.mu.Lock()
		ids := make([]*jobRecord, 0, len(s.jobs))
		for _, rec := range s.jobs {
			ids = append(ids, rec)
		}
		s.mu.Unlock()
		reply := ctlReply{OK: true}
		for _, rec := range ids {
			reply.Jobs = append(reply.Jobs, s.snapshot(rec))
		}
		return reply
	case "shutdown":
		// The caller trips quit after the reply is flushed, so the
		// shutdown's own acknowledgment is never severed with the rest of
		// the control connections.
		return ctlReply{OK: true}
	}
	return ctlReply{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

// serveConn reads JSON-lines requests until EOF or server shutdown (a
// shutdown severs every control connection so the drain never waits on
// an idle client).
func (s *jobServer) serveConn(conn net.Conn) {
	defer conn.Close()
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		select {
		case <-s.quit:
			conn.Close()
		case <-connDone:
		}
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req ctlRequest
		if err := json.Unmarshal(line, &req); err != nil {
			_ = enc.Encode(ctlReply{Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		reply := s.handle(req)
		if err := enc.Encode(reply); err != nil {
			return
		}
		if req.Op == "shutdown" && reply.OK {
			s.quitOnce.Do(func() { close(s.quit) })
			return
		}
	}
}

// runServe runs the job server until a shutdown request. ln non-nil
// supplies a pre-bound control listener (tests); otherwise o.listen is
// bound. The bound address is printed as "listening <addr>" so scripts
// can scrape it when o.listen holds port 0.
func runServe(o serveOpts, ln net.Listener) error {
	if ln == nil {
		var err error
		if ln, err = net.Listen("tcp", o.listen); err != nil {
			return fmt.Errorf("listen %s: %w", o.listen, err)
		}
	}
	s := newJobServer(o)
	defer s.host.Shutdown()
	fmt.Printf("listening %s\n", ln.Addr())
	go s.dispatcher()
	// The accept loop ends when shutdown closes the listener; in-flight
	// jobs drain before the host goes down.
	go func() {
		<-s.quit
		ln.Close()
	}()
	var conns sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				conns.Wait()
				s.running.Wait()
				return nil
			default:
				return fmt.Errorf("accept: %w", err)
			}
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			s.serveConn(conn)
		}()
	}
}

// runSubmit is the client half: submit one job to a running server,
// wait for its result, and print the job record as JSON. A failed job
// exits nonzero.
func runSubmit(server, name string, steps int) error {
	conn, err := net.Dial("tcp", server)
	if err != nil {
		return fmt.Errorf("dial %s: %w", server, err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(ctlRequest{Op: "submit", Workload: name, Steps: steps, Wait: true}); err != nil {
		return err
	}
	var reply ctlReply
	if err := json.NewDecoder(conn).Decode(&reply); err != nil {
		return fmt.Errorf("read reply: %w", err)
	}
	if reply.Error != "" {
		return errors.New(reply.Error)
	}
	buf, err := json.Marshal(reply.Job)
	if err != nil {
		return err
	}
	os.Stdout.Write(append(buf, '\n'))
	if reply.Job != nil && reply.Job.State == jobFailed {
		return fmt.Errorf("job %d failed: %s", reply.Job.ID, reply.Job.Error)
	}
	return nil
}
