// Server mode: godcr-node as a long-lived job server. Instead of
// running one workload and exiting, the process builds a resident
// godcr.Host — cluster, task registry, failure detector — and accepts a
// stream of submitted jobs over a JSON-lines TCP control socket. Each
// admitted job becomes an isolated Host.NewJob runtime multiplexed over
// the same shard pool: jobs run concurrently (up to -max-jobs), and one
// job's failure or chaos kill never touches another's traffic.
//
//	godcr-node -serve -n 4 -max-jobs 2 -listen 127.0.0.1:7100
//	godcr-node -submit -server 127.0.0.1:7100 -workload logreg -steps 6
//
// The control protocol is one JSON object per line, in either
// direction:
//
//	{"op":"submit","workload":"stencil","steps":12,"wait":true}
//	{"op":"status","job":3}
//	{"op":"result","job":3,"wait":true}
//	{"op":"list"}
//	{"op":"shutdown"}
//
// Admission is fair FIFO: jobs start in submission order, with at most
// -max-jobs running at once; the rest queue. A completed job's reply
// carries its outputs and ControlHash — bit-identical to the same
// workload run solo, which the server test asserts.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"godcr"
)

// jobState is a submitted job's lifecycle phase.
type jobState string

const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// jobRecord is one submitted job's public state, marshaled into status
// and result replies.
type jobRecord struct {
	ID       uint64    `json:"job"`
	Workload string    `json:"workload"`
	Steps    int       `json:"steps"`
	State    jobState  `json:"state"`
	Error    string    `json:"error,omitempty"`
	Hash     [2]string `json:"hash,omitempty"`
	Outputs  []float64 `json:"outputs,omitempty"`

	done chan struct{}
	// rt is the job's runtime handle, set when the job starts and kept
	// after it finishes: every counter /stats reads from it (Stats,
	// LatestCheckpoint, TimerSnapshot) is an atomic or lock-guarded
	// snapshot that stays valid after Shutdown.
	rt *godcr.Runtime
}

// ctlRequest is one control-socket request line.
type ctlRequest struct {
	Op       string `json:"op"`
	Workload string `json:"workload,omitempty"`
	Steps    int    `json:"steps,omitempty"`
	// Wait blocks a submit or result reply until the job finishes.
	Wait bool   `json:"wait,omitempty"`
	Job  uint64 `json:"job,omitempty"`
}

// ctlReply is one control-socket reply line.
type ctlReply struct {
	OK    bool         `json:"ok"`
	Error string       `json:"error,omitempty"`
	Job   *jobRecord   `json:"job,omitempty"`
	Jobs  []*jobRecord `json:"jobs,omitempty"`
}

// serveOpts configures the job server.
type serveOpts struct {
	shards  int
	maxJobs int
	listen  string
	// supervise runs each job under RunSupervised with periodic
	// checkpoints spilled under ckptDir/job-<id>.
	supervise bool
	ckptDir   string
	// statsAddr, when nonempty, serves live observability JSON over
	// HTTP at /stats; statsLn supplies a pre-bound listener (tests).
	statsAddr string
	statsLn   net.Listener
}

// jobServer multiplexes submitted jobs over one resident host.
type jobServer struct {
	host *godcr.Host
	opts serveOpts
	// ckptEvery mirrors the host config's checkpoint cadence for the
	// /stats report (0 when unsupervised).
	ckptEvery int

	mu   sync.Mutex
	jobs map[uint64]*jobRecord
	next uint64

	// admit is the FIFO admission queue; the dispatcher starts jobs in
	// submission order, at most maxJobs at once (slots).
	admit chan *jobRecord
	slots chan struct{}

	quit     chan struct{}
	quitOnce sync.Once
	running  sync.WaitGroup
}

func newJobServer(o serveOpts) *jobServer {
	if o.maxJobs <= 0 {
		o.maxJobs = 2
	}
	cfg := godcr.Config{Shards: o.shards, SafetyChecks: true}
	if o.supervise {
		cfg.CheckpointEvery = 4
		cfg.CheckpointDir = o.ckptDir
		cfg.OpDeadline = 30 * time.Second
	}
	h := godcr.NewHost(cfg)
	// Every workload's tasks are registered once on the resident host,
	// before anything executes; jobs share the registry.
	for _, wl := range workloads() {
		wl.register(h)
	}
	return &jobServer{
		host:      h,
		opts:      o,
		ckptEvery: cfg.CheckpointEvery,
		jobs:      make(map[uint64]*jobRecord),
		admit:     make(chan *jobRecord, 1024),
		slots:     make(chan struct{}, o.maxJobs),
		quit:      make(chan struct{}),
	}
}

// submit enqueues a job and returns its record.
func (s *jobServer) submit(name string, steps int) (*jobRecord, error) {
	wl, ok := workloads()[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	if steps <= 0 {
		steps = wl.defaultSteps
	}
	s.mu.Lock()
	s.next++
	rec := &jobRecord{
		ID: s.next, Workload: name, Steps: steps,
		State: jobQueued, done: make(chan struct{}),
	}
	s.jobs[rec.ID] = rec
	s.mu.Unlock()
	select {
	case s.admit <- rec:
		return rec, nil
	default:
		s.mu.Lock()
		delete(s.jobs, rec.ID)
		s.mu.Unlock()
		return nil, errors.New("admission queue full")
	}
}

// dispatcher starts queued jobs in FIFO order, holding each until a
// concurrency slot frees up.
func (s *jobServer) dispatcher() {
	for {
		var rec *jobRecord
		select {
		case rec = <-s.admit:
		case <-s.quit:
			return
		}
		select {
		case s.slots <- struct{}{}:
		case <-s.quit:
			s.finish(rec, nil, [2]uint64{}, errors.New("server shut down before the job started"))
			return
		}
		s.running.Add(1)
		go func(rec *jobRecord) {
			defer s.running.Done()
			defer func() { <-s.slots }()
			s.runJob(rec)
		}(rec)
	}
}

// runJob executes one admitted job on its own Host.NewJob runtime.
func (s *jobServer) runJob(rec *jobRecord) {
	wl := workloads()[rec.Workload]
	rt := s.host.NewJob(rec.ID)
	defer rt.Shutdown()
	s.mu.Lock()
	rec.State = jobRunning
	rec.rt = rt
	s.mu.Unlock()
	var out agreeCell
	program := wl.program(&out, rec.Steps)
	var err error
	if s.opts.supervise {
		err = rt.RunSupervised(program, godcr.SupervisorPolicy{
			MaxRestarts: 6,
			Backoff:     5 * time.Millisecond,
			BackoffCap:  50 * time.Millisecond,
			JitterSeed:  rec.ID,
		})
	} else {
		err = rt.Execute(program)
	}
	s.finish(rec, out.get(), rt.ControlHash(), err)
}

// finish publishes a job's terminal state and wakes result waiters.
func (s *jobServer) finish(rec *jobRecord, outputs []float64, hash [2]uint64, err error) {
	s.mu.Lock()
	if err != nil {
		rec.State = jobFailed
		rec.Error = err.Error()
	} else {
		rec.State = jobDone
		rec.Hash = hashWords(hash)
		rec.Outputs = outputs
	}
	s.mu.Unlock()
	close(rec.done)
}

// snapshot copies a record for marshaling outside the lock.
func (s *jobServer) snapshot(rec *jobRecord) *jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *rec
	cp.Outputs = append([]float64(nil), rec.Outputs...)
	cp.done = nil
	return &cp
}

func (s *jobServer) lookup(id uint64) *jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handle serves one control request.
func (s *jobServer) handle(req ctlRequest) ctlReply {
	switch req.Op {
	case "submit":
		rec, err := s.submit(req.Workload, req.Steps)
		if err != nil {
			return ctlReply{Error: err.Error()}
		}
		if req.Wait {
			<-rec.done
		}
		return ctlReply{OK: true, Job: s.snapshot(rec)}
	case "status", "result":
		rec := s.lookup(req.Job)
		if rec == nil {
			return ctlReply{Error: fmt.Sprintf("unknown job %d", req.Job)}
		}
		if req.Op == "result" && req.Wait {
			<-rec.done
		}
		return ctlReply{OK: true, Job: s.snapshot(rec)}
	case "list":
		reply := ctlReply{OK: true}
		for _, rec := range s.sortedJobs() {
			reply.Jobs = append(reply.Jobs, s.snapshot(rec))
		}
		return reply
	case "shutdown":
		// The caller trips quit after the reply is flushed, so the
		// shutdown's own acknowledgment is never severed with the rest of
		// the control connections.
		return ctlReply{OK: true}
	}
	return ctlReply{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

// sortedJobs returns every job record ordered by job ID. Map iteration
// order is randomized per run; list replies and /stats reports must be
// stable so scripted diffs and dashboards don't see phantom churn.
func (s *jobServer) sortedJobs() []*jobRecord {
	s.mu.Lock()
	recs := make([]*jobRecord, 0, len(s.jobs))
	for _, rec := range s.jobs {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

// statsReply is the /stats endpoint's JSON document: a live snapshot
// of every job's progress counters and checkpoint frontier, the
// cluster's transport and per-link wire counters, per-shard heartbeat
// ages, and the merged per-stage timer tree.
type statsReply struct {
	Shards  int          `json:"shards"`
	MaxJobs int          `json:"max_jobs"`
	Jobs    []jobStats   `json:"jobs"`
	Cluster clusterStats `json:"cluster"`
	// Timers is the per-stage timer tree merged over every job this
	// process has run (see godcr.TimerSnapshot).
	Timers *godcr.TimerSnapshot `json:"timers"`
}

type jobStats struct {
	jobRecord
	Stats      *godcr.Stats `json:"stats,omitempty"`
	Checkpoint *ckptStatus  `json:"checkpoint,omitempty"`
}

type ckptStatus struct {
	// Frontier is the freshest cut's journal frontier (0 before the
	// first cut); Every is the op-count cadence between cuts.
	Frontier uint64 `json:"frontier"`
	Every    int    `json:"every"`
}

type clusterStats struct {
	Transport godcr.TransportStats `json:"transport"`
	Wire      godcr.WireStats      `json:"wire"`
	Links     []godcr.LinkStats    `json:"links"`
	// HeartbeatAgesMs[i] is how many milliseconds ago the failure
	// detector last heard shard i: 0 for this process's own shards,
	// -1 for shards never heard from (heartbeats disarmed or remote
	// peers not yet beating).
	HeartbeatAgesMs []float64 `json:"heartbeat_ages_ms"`
}

// statsSnapshot assembles the /stats document from live counters.
func (s *jobServer) statsSnapshot() statsReply {
	reply := statsReply{
		Shards:  s.host.Shards(),
		MaxJobs: s.opts.maxJobs,
		Jobs:    []jobStats{},
	}
	var timerParts []*godcr.TimerSnapshot
	for _, rec := range s.sortedJobs() {
		js := jobStats{jobRecord: *s.snapshot(rec)}
		s.mu.Lock()
		rt := rec.rt
		s.mu.Unlock()
		if rt != nil {
			st := rt.Stats()
			js.Stats = &st
			cs := &ckptStatus{Every: s.ckptEvery}
			if cp := rt.LatestCheckpoint(); cp != nil {
				cs.Frontier = cp.Frontier
			}
			js.Checkpoint = cs
			timerParts = append(timerParts, rt.TimerSnapshot())
		}
		reply.Jobs = append(reply.Jobs, js)
	}
	reply.Timers = godcr.MergeTimerSnapshots(timerParts...)
	if reply.Timers == nil {
		// No job has started yet: report an empty tree, not null — the
		// schema promises a tree is always present.
		reply.Timers = &godcr.TimerSnapshot{Name: "run"}
	}
	ages := s.host.HeartbeatAges()
	agesMs := make([]float64, len(ages))
	for i, a := range ages {
		if a < 0 {
			agesMs[i] = -1
		} else {
			agesMs[i] = float64(a) / float64(time.Millisecond)
		}
	}
	reply.Cluster = clusterStats{
		Transport:       s.host.Cluster().Stats(),
		Wire:            s.host.WireStats(),
		Links:           s.host.LinkStats(),
		HeartbeatAgesMs: agesMs,
	}
	return reply
}

func (s *jobServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.statsSnapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveStats runs the observability HTTP listener until quit. The
// bound address is printed as "stats listening <addr>" so scripts can
// scrape it when the flag holds port 0.
func (s *jobServer) serveStats(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.handleStats)
	srv := &http.Server{Handler: mux}
	go func() {
		<-s.quit
		srv.Close()
	}()
	fmt.Printf("stats listening %s\n", ln.Addr())
	_ = srv.Serve(ln)
}

// validateStats structurally checks a /stats document: every required
// top-level section present and shaped right. Shared by the server
// test and the -stats-smoke CI mode so both gate the same schema.
func validateStats(doc []byte) error {
	var reply struct {
		Shards  *int       `json:"shards"`
		MaxJobs *int       `json:"max_jobs"`
		Jobs    []jobStats `json:"jobs"`
		Cluster *struct {
			Transport       *godcr.TransportStats `json:"transport"`
			Wire            *godcr.WireStats      `json:"wire"`
			Links           []godcr.LinkStats     `json:"links"`
			HeartbeatAgesMs []float64             `json:"heartbeat_ages_ms"`
		} `json:"cluster"`
		Timers *godcr.TimerSnapshot `json:"timers"`
	}
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reply); err != nil {
		return fmt.Errorf("stats document does not match schema: %w", err)
	}
	switch {
	case reply.Shards == nil || *reply.Shards <= 0:
		return errors.New("stats: missing or non-positive shards")
	case reply.MaxJobs == nil || *reply.MaxJobs <= 0:
		return errors.New("stats: missing or non-positive max_jobs")
	case reply.Jobs == nil:
		return errors.New("stats: missing jobs array")
	case reply.Cluster == nil || reply.Cluster.Transport == nil || reply.Cluster.Wire == nil:
		return errors.New("stats: missing cluster section")
	case len(reply.Cluster.Links) != *reply.Shards:
		return fmt.Errorf("stats: %d link entries for %d shards", len(reply.Cluster.Links), *reply.Shards)
	case len(reply.Cluster.HeartbeatAgesMs) != *reply.Shards:
		return fmt.Errorf("stats: %d heartbeat ages for %d shards", len(reply.Cluster.HeartbeatAgesMs), *reply.Shards)
	case reply.Timers == nil || reply.Timers.Name == "":
		return errors.New("stats: missing timer tree")
	}
	for i, prev := 0, uint64(0); i < len(reply.Jobs); i++ {
		if id := reply.Jobs[i].ID; id <= prev {
			return fmt.Errorf("stats: jobs not sorted by id at index %d", i)
		} else {
			prev = id
		}
	}
	return nil
}

// serveConn reads JSON-lines requests until EOF or server shutdown (a
// shutdown severs every control connection so the drain never waits on
// an idle client).
func (s *jobServer) serveConn(conn net.Conn) {
	defer conn.Close()
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		select {
		case <-s.quit:
			conn.Close()
		case <-connDone:
		}
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req ctlRequest
		if err := json.Unmarshal(line, &req); err != nil {
			_ = enc.Encode(ctlReply{Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		reply := s.handle(req)
		if err := enc.Encode(reply); err != nil {
			return
		}
		if req.Op == "shutdown" && reply.OK {
			s.quitOnce.Do(func() { close(s.quit) })
			return
		}
	}
}

// runServe runs the job server until a shutdown request. ln non-nil
// supplies a pre-bound control listener (tests); otherwise o.listen is
// bound. The bound address is printed as "listening <addr>" so scripts
// can scrape it when o.listen holds port 0.
func runServe(o serveOpts, ln net.Listener) error {
	if ln == nil {
		var err error
		if ln, err = net.Listen("tcp", o.listen); err != nil {
			return fmt.Errorf("listen %s: %w", o.listen, err)
		}
	}
	s := newJobServer(o)
	defer s.host.Shutdown()
	fmt.Printf("listening %s\n", ln.Addr())
	if statsLn := o.statsLn; statsLn != nil {
		go s.serveStats(statsLn)
	} else if o.statsAddr != "" {
		statsLn, err := net.Listen("tcp", o.statsAddr)
		if err != nil {
			return fmt.Errorf("stats listen %s: %w", o.statsAddr, err)
		}
		go s.serveStats(statsLn)
	}
	go s.dispatcher()
	// The accept loop ends when shutdown closes the listener; in-flight
	// jobs drain before the host goes down.
	go func() {
		<-s.quit
		ln.Close()
	}()
	var conns sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				conns.Wait()
				s.running.Wait()
				return nil
			default:
				return fmt.Errorf("accept: %w", err)
			}
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			s.serveConn(conn)
		}()
	}
}

// runSubmit is the client half: submit one job to a running server,
// wait for its result, and print the job record as JSON. A failed job
// exits nonzero.
func runSubmit(server, name string, steps int) error {
	conn, err := net.Dial("tcp", server)
	if err != nil {
		return fmt.Errorf("dial %s: %w", server, err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(ctlRequest{Op: "submit", Workload: name, Steps: steps, Wait: true}); err != nil {
		return err
	}
	var reply ctlReply
	if err := json.NewDecoder(conn).Decode(&reply); err != nil {
		return fmt.Errorf("read reply: %w", err)
	}
	if reply.Error != "" {
		return errors.New(reply.Error)
	}
	buf, err := json.Marshal(reply.Job)
	if err != nil {
		return err
	}
	os.Stdout.Write(append(buf, '\n'))
	if reply.Job != nil && reply.Job.State == jobFailed {
		return fmt.Errorf("job %d failed: %s", reply.Job.ID, reply.Job.Error)
	}
	return nil
}
