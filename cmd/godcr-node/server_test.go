package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// dialCtl opens one control connection and returns a request/reply
// round-tripper.
func dialCtl(t *testing.T, addr string) (func(ctlRequest) ctlReply, func()) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial control socket: %v", err)
	}
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	return func(req ctlRequest) ctlReply {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatalf("send %q: %v", req.Op, err)
		}
		var reply ctlReply
		if err := dec.Decode(&reply); err != nil {
			t.Fatalf("reply to %q: %v", req.Op, err)
		}
		return reply
	}, func() { conn.Close() }
}

// The job server must run a stream of submitted jobs — more jobs than
// concurrency slots, all three workloads at once — and every result
// must be bit-identical to the same workload run solo on a fresh
// single-job runtime.
func TestServeJobStream(t *testing.T) {
	const shards = 4
	baselines := map[string]*report{}
	for name := range workloads() {
		rep, err := runInProcess(shards, name, 0)
		if err != nil {
			t.Fatalf("baseline %s: %v", name, err)
		}
		baselines[name] = rep
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- runServe(serveOpts{shards: shards, maxJobs: 2}, ln) }()

	// Six jobs over two concurrency slots: every workload twice, each
	// submitted on its own connection with wait:true so the replies
	// arrive only as jobs finish.
	names := []string{"stencil", "circuit", "logreg", "logreg", "circuit", "stencil"}
	results := make([]*jobRecord, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			call, closeConn := dialCtl(t, ln.Addr().String())
			defer closeConn()
			reply := call(ctlRequest{Op: "submit", Workload: name, Wait: true})
			if reply.Error != "" {
				t.Errorf("submit %s: %s", name, reply.Error)
				return
			}
			results[i] = reply.Job
		}(i, name)
	}
	wg.Wait()

	ids := map[uint64]bool{}
	for i, rec := range results {
		if rec == nil {
			t.Fatalf("job %d (%s): no result", i, names[i])
		}
		if rec.State != jobDone {
			t.Fatalf("job %d (%s): state %s, error %q", rec.ID, names[i], rec.State, rec.Error)
		}
		if ids[rec.ID] {
			t.Fatalf("job id %d assigned twice", rec.ID)
		}
		ids[rec.ID] = true
		base := baselines[names[i]]
		if rec.Hash != base.Hash {
			t.Fatalf("job %d (%s): hash %v, want %v", rec.ID, names[i], rec.Hash, base.Hash)
		}
		if len(rec.Outputs) != len(base.Outputs) {
			t.Fatalf("job %d (%s): %d outputs, want %d", rec.ID, names[i], len(rec.Outputs), len(base.Outputs))
		}
		for j := range base.Outputs {
			if rec.Outputs[j] != base.Outputs[j] {
				t.Fatalf("job %d (%s): output[%d] = %v, want %v", rec.ID, names[i], j, rec.Outputs[j], base.Outputs[j])
			}
		}
	}

	// Status, list, and error paths on a fresh connection.
	call, closeConn := dialCtl(t, ln.Addr().String())
	defer closeConn()
	if reply := call(ctlRequest{Op: "status", Job: results[0].ID}); !reply.OK || reply.Job.State != jobDone {
		t.Fatalf("status: %+v", reply)
	}
	if reply := call(ctlRequest{Op: "list"}); !reply.OK || len(reply.Jobs) != len(names) {
		t.Fatalf("list returned %d jobs, want %d", len(reply.Jobs), len(names))
	}
	if reply := call(ctlRequest{Op: "submit", Workload: "no-such"}); reply.Error == "" {
		t.Fatal("submitting an unknown workload did not error")
	}
	if reply := call(ctlRequest{Op: "status", Job: 999}); reply.Error == "" {
		t.Fatal("status of an unknown job did not error")
	}

	if reply := call(ctlRequest{Op: "shutdown"}); !reply.OK {
		t.Fatalf("shutdown: %+v", reply)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after shutdown")
	}
}

// Submissions racing a single concurrency slot must all run — in FIFO
// admission order — and the queue must never lose or double-run a job.
func TestServeFIFOAdmission(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- runServe(serveOpts{shards: 2, maxJobs: 1}, ln) }()

	// Submit without waiting, on one connection, so submission order is
	// deterministic; then wait for each result.
	call, closeConn := dialCtl(t, ln.Addr().String())
	defer closeConn()
	var ids []uint64
	for i := 0; i < 4; i++ {
		reply := call(ctlRequest{Op: "submit", Workload: "stencil"})
		if reply.Error != "" {
			t.Fatalf("submit %d: %s", i, reply.Error)
		}
		ids = append(ids, reply.Job.ID)
	}
	for i, id := range ids {
		if i > 0 && id != ids[i-1]+1 {
			t.Fatalf("job ids not monotone: %v", ids)
		}
		reply := call(ctlRequest{Op: "result", Job: id, Wait: true})
		if reply.Error != "" || reply.Job.State != jobDone {
			t.Fatalf("job %d: %+v", id, reply)
		}
	}

	if reply := call(ctlRequest{Op: "shutdown"}); !reply.OK {
		t.Fatalf("shutdown: %+v", reply)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after shutdown")
	}
}

// Regression: the list reply used to be built by bare map iteration,
// so its order changed run to run. It must come back sorted by job ID
// — stable across repeated calls.
func TestServeListSortedByJobID(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- runServe(serveOpts{shards: 2, maxJobs: 2}, ln) }()

	call, closeConn := dialCtl(t, ln.Addr().String())
	defer closeConn()
	const jobs = 8
	for i := 0; i < jobs; i++ {
		if reply := call(ctlRequest{Op: "submit", Workload: "stencil"}); reply.Error != "" {
			t.Fatalf("submit %d: %s", i, reply.Error)
		}
	}
	// Enough entries that an unsorted map iteration would betray itself
	// across repeated list calls with overwhelming probability.
	for round := 0; round < 20; round++ {
		reply := call(ctlRequest{Op: "list"})
		if !reply.OK || len(reply.Jobs) != jobs {
			t.Fatalf("round %d: list returned %d jobs, want %d", round, len(reply.Jobs), jobs)
		}
		for i, rec := range reply.Jobs {
			if rec.ID != uint64(i+1) {
				t.Fatalf("round %d: jobs[%d].ID = %d, want %d (unsorted list reply)", round, i, rec.ID, i+1)
			}
		}
	}

	if reply := call(ctlRequest{Op: "shutdown"}); !reply.OK {
		t.Fatalf("shutdown: %+v", reply)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after shutdown")
	}
}

// The /stats endpoint must serve schema-valid JSON before, during, and
// after jobs, and its counters must reflect the completed work.
func TestServeStatsEndpoint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	statsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("stats listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- runServe(serveOpts{shards: 3, maxJobs: 2, statsLn: statsLn}, ln)
	}()

	scrape := func() []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s/stats", statsLn.Addr()))
		if err != nil {
			t.Fatalf("GET /stats: %v", err)
		}
		defer resp.Body.Close()
		doc, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read /stats body: %v", err)
		}
		if err := validateStats(doc); err != nil {
			t.Fatalf("%v\n%s", err, doc)
		}
		return doc
	}

	scrape() // empty server: valid schema, zero jobs

	call, closeConn := dialCtl(t, ln.Addr().String())
	defer closeConn()
	if reply := call(ctlRequest{Op: "submit", Workload: "circuit", Wait: true}); reply.Error != "" {
		t.Fatalf("submit: %s", reply.Error)
	}
	if reply := call(ctlRequest{Op: "submit", Workload: "stencil", Wait: true}); reply.Error != "" {
		t.Fatalf("submit: %s", reply.Error)
	}

	var reply statsReply
	if err := json.Unmarshal(scrape(), &reply); err != nil {
		t.Fatalf("unmarshal /stats: %v", err)
	}
	if reply.Shards != 3 || reply.MaxJobs != 2 {
		t.Fatalf("shards/max_jobs = %d/%d, want 3/2", reply.Shards, reply.MaxJobs)
	}
	if len(reply.Jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(reply.Jobs))
	}
	for i, js := range reply.Jobs {
		if js.ID != uint64(i+1) || js.State != jobDone {
			t.Fatalf("jobs[%d] = id %d state %s, want id %d done", i, js.ID, js.State, i+1)
		}
		if js.Stats == nil || js.Stats.PointTasks == 0 {
			t.Fatalf("jobs[%d]: empty stats counters", i)
		}
	}
	if reply.Cluster.Transport.Messages == 0 {
		t.Fatal("cluster transport counters empty after two jobs")
	}
	if reply.Cluster.Wire.FramesOut == 0 || reply.Cluster.Wire.FramesIn == 0 {
		t.Fatalf("wire counters empty: %+v", reply.Cluster.Wire)
	}
	for _, path := range []string{"attempt", "coarse/analysis", "fine/analysis", "execute/point", "collective"} {
		s := reply.Timers.Find(path)
		if s == nil || s.Count == 0 {
			t.Fatalf("merged timer tree missing samples for %q:\n%s", path, reply.Timers.Tree())
		}
	}

	if reply := call(ctlRequest{Op: "shutdown"}); !reply.OK {
		t.Fatalf("shutdown: %+v", reply)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after shutdown")
	}
}

// The -submit client round-trips against a live server.
func TestServeSubmitClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- runServe(serveOpts{shards: 2, maxJobs: 2}, ln) }()

	if err := runSubmit(ln.Addr().String(), "logreg", 0); err != nil {
		t.Fatalf("submit client: %v", err)
	}

	call, closeConn := dialCtl(t, ln.Addr().String())
	defer closeConn()
	if reply := call(ctlRequest{Op: "shutdown"}); !reply.OK {
		t.Fatalf("shutdown: %+v", reply)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after shutdown")
	}
}
