package main

import (
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"
)

// dialCtl opens one control connection and returns a request/reply
// round-tripper.
func dialCtl(t *testing.T, addr string) (func(ctlRequest) ctlReply, func()) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial control socket: %v", err)
	}
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	return func(req ctlRequest) ctlReply {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatalf("send %q: %v", req.Op, err)
		}
		var reply ctlReply
		if err := dec.Decode(&reply); err != nil {
			t.Fatalf("reply to %q: %v", req.Op, err)
		}
		return reply
	}, func() { conn.Close() }
}

// The job server must run a stream of submitted jobs — more jobs than
// concurrency slots, all three workloads at once — and every result
// must be bit-identical to the same workload run solo on a fresh
// single-job runtime.
func TestServeJobStream(t *testing.T) {
	const shards = 4
	baselines := map[string]*report{}
	for name := range workloads() {
		rep, err := runInProcess(shards, name, 0)
		if err != nil {
			t.Fatalf("baseline %s: %v", name, err)
		}
		baselines[name] = rep
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- runServe(serveOpts{shards: shards, maxJobs: 2}, ln) }()

	// Six jobs over two concurrency slots: every workload twice, each
	// submitted on its own connection with wait:true so the replies
	// arrive only as jobs finish.
	names := []string{"stencil", "circuit", "logreg", "logreg", "circuit", "stencil"}
	results := make([]*jobRecord, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			call, closeConn := dialCtl(t, ln.Addr().String())
			defer closeConn()
			reply := call(ctlRequest{Op: "submit", Workload: name, Wait: true})
			if reply.Error != "" {
				t.Errorf("submit %s: %s", name, reply.Error)
				return
			}
			results[i] = reply.Job
		}(i, name)
	}
	wg.Wait()

	ids := map[uint64]bool{}
	for i, rec := range results {
		if rec == nil {
			t.Fatalf("job %d (%s): no result", i, names[i])
		}
		if rec.State != jobDone {
			t.Fatalf("job %d (%s): state %s, error %q", rec.ID, names[i], rec.State, rec.Error)
		}
		if ids[rec.ID] {
			t.Fatalf("job id %d assigned twice", rec.ID)
		}
		ids[rec.ID] = true
		base := baselines[names[i]]
		if rec.Hash != base.Hash {
			t.Fatalf("job %d (%s): hash %v, want %v", rec.ID, names[i], rec.Hash, base.Hash)
		}
		if len(rec.Outputs) != len(base.Outputs) {
			t.Fatalf("job %d (%s): %d outputs, want %d", rec.ID, names[i], len(rec.Outputs), len(base.Outputs))
		}
		for j := range base.Outputs {
			if rec.Outputs[j] != base.Outputs[j] {
				t.Fatalf("job %d (%s): output[%d] = %v, want %v", rec.ID, names[i], j, rec.Outputs[j], base.Outputs[j])
			}
		}
	}

	// Status, list, and error paths on a fresh connection.
	call, closeConn := dialCtl(t, ln.Addr().String())
	defer closeConn()
	if reply := call(ctlRequest{Op: "status", Job: results[0].ID}); !reply.OK || reply.Job.State != jobDone {
		t.Fatalf("status: %+v", reply)
	}
	if reply := call(ctlRequest{Op: "list"}); !reply.OK || len(reply.Jobs) != len(names) {
		t.Fatalf("list returned %d jobs, want %d", len(reply.Jobs), len(names))
	}
	if reply := call(ctlRequest{Op: "submit", Workload: "no-such"}); reply.Error == "" {
		t.Fatal("submitting an unknown workload did not error")
	}
	if reply := call(ctlRequest{Op: "status", Job: 999}); reply.Error == "" {
		t.Fatal("status of an unknown job did not error")
	}

	if reply := call(ctlRequest{Op: "shutdown"}); !reply.OK {
		t.Fatalf("shutdown: %+v", reply)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after shutdown")
	}
}

// Submissions racing a single concurrency slot must all run — in FIFO
// admission order — and the queue must never lose or double-run a job.
func TestServeFIFOAdmission(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- runServe(serveOpts{shards: 2, maxJobs: 1}, ln) }()

	// Submit without waiting, on one connection, so submission order is
	// deterministic; then wait for each result.
	call, closeConn := dialCtl(t, ln.Addr().String())
	defer closeConn()
	var ids []uint64
	for i := 0; i < 4; i++ {
		reply := call(ctlRequest{Op: "submit", Workload: "stencil"})
		if reply.Error != "" {
			t.Fatalf("submit %d: %s", i, reply.Error)
		}
		ids = append(ids, reply.Job.ID)
	}
	for i, id := range ids {
		if i > 0 && id != ids[i-1]+1 {
			t.Fatalf("job ids not monotone: %v", ids)
		}
		reply := call(ctlRequest{Op: "result", Job: id, Wait: true})
		if reply.Error != "" || reply.Job.State != jobDone {
			t.Fatalf("job %d: %+v", id, reply)
		}
	}

	if reply := call(ctlRequest{Op: "shutdown"}); !reply.OK {
		t.Fatalf("shutdown: %+v", reply)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after shutdown")
	}
}

// The -submit client round-trips against a live server.
func TestServeSubmitClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- runServe(serveOpts{shards: 2, maxJobs: 2}, ln) }()

	if err := runSubmit(ln.Addr().String(), "logreg", 0); err != nil {
		t.Fatalf("submit client: %v", err)
	}

	call, closeConn := dialCtl(t, ln.Addr().String())
	defer closeConn()
	if reply := call(ctlRequest{Op: "shutdown"}); !reply.OK {
		t.Fatalf("shutdown: %+v", reply)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after shutdown")
	}
}
