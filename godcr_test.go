package godcr_test

import (
	"fmt"
	"testing"
	"time"

	"godcr"
)

// TestFacadeQuickstart exercises the public API exactly as the package
// doc shows.
func TestFacadeQuickstart(t *testing.T) {
	rt := godcr.NewRuntime(godcr.Config{Shards: 4, SafetyChecks: true})
	defer rt.Shutdown()
	rt.RegisterTask("scale", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		x.Rect().Each(func(p godcr.Point) bool { x.Set(p, x.At(p)*2); return true })
		return 0, nil
	})
	err := rt.Execute(func(ctx *godcr.Context) error {
		cells := ctx.CreateRegion(godcr.R1(0, 1023), "x")
		tiles := ctx.PartitionEqual(cells, 4)
		ctx.Fill(cells, "x", 1)
		ctx.IndexLaunch(godcr.Launch{
			Task: "scale", Domain: godcr.R1(0, 3),
			Reqs: []godcr.RegionReq{{Part: tiles, Priv: godcr.ReadWrite, Fields: []string{"x"}}},
		})
		vals := ctx.InlineRead(cells, "x")
		for i, v := range vals {
			if v != 2 {
				return fmt.Errorf("cell %d = %v", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().PointTasks != 4 {
		t.Fatalf("PointTasks = %d", rt.Stats().PointTasks)
	}
}

// TestFacadeChaos runs the quickstart workload under an injected
// fault plan through the public API: results must be unchanged, the
// watchdog must stay quiet, and the transport counters must show the
// faults actually fired.
func TestFacadeChaos(t *testing.T) {
	rt := godcr.NewRuntime(godcr.Config{
		Shards:       4,
		SafetyChecks: true,
		OpDeadline:   10 * time.Second,
		Faults: &godcr.FaultPlan{
			Seed: 1, Drop: 0.05, Duplicate: 0.05, Reorder: 0.1,
			JitterMax: 200 * time.Microsecond,
		},
	})
	defer rt.Shutdown()
	rt.RegisterTask("scale", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		x.Rect().Each(func(p godcr.Point) bool { x.Set(p, x.At(p)*2); return true })
		return 0, nil
	})
	err := rt.Execute(func(ctx *godcr.Context) error {
		cells := ctx.CreateRegion(godcr.R1(0, 1023), "x")
		tiles := ctx.PartitionEqual(cells, 4)
		ctx.Fill(cells, "x", 1)
		for step := 0; step < 5; step++ {
			ctx.IndexLaunch(godcr.Launch{
				Task: "scale", Domain: godcr.R1(0, 3),
				Reqs: []godcr.RegionReq{{Part: tiles, Priv: godcr.ReadWrite, Fields: []string{"x"}}},
			})
		}
		for i, v := range ctx.InlineRead(cells, "x") {
			if v != 32 {
				return fmt.Errorf("cell %d = %v, want 32", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := rt.TransportStats(); st.Dropped == 0 {
		t.Fatalf("fault plan injected nothing: %+v", st)
	}
}

func TestFacadeRNGReplicable(t *testing.T) {
	a, b := godcr.NewRNG(7), godcr.NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("facade RNG not replicable")
		}
	}
}
