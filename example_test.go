package godcr_test

import (
	"fmt"

	"godcr"
)

// The package-level example: an implicitly parallel program whose
// dependence analysis is control-replicated over four shards.
func Example() {
	rt := godcr.NewRuntime(godcr.Config{Shards: 4, SafetyChecks: true})
	defer rt.Shutdown()

	rt.RegisterTask("double", func(tc *godcr.TaskContext) (float64, error) {
		x := tc.Region(0).Field("x")
		x.Rect().Each(func(p godcr.Point) bool {
			x.Set(p, x.At(p)*2)
			return true
		})
		return 0, nil
	})

	err := rt.Execute(func(ctx *godcr.Context) error {
		cells := ctx.CreateRegion(godcr.R1(0, 15), "x")
		tiles := ctx.PartitionEqual(cells, 4)
		ctx.Fill(cells, "x", 3)
		ctx.IndexLaunch(godcr.Launch{
			Task: "double", Domain: godcr.R1(0, 3),
			Reqs: []godcr.RegionReq{{Part: tiles, Priv: godcr.ReadWrite, Fields: []string{"x"}}},
		})
		vals := ctx.InlineRead(cells, "x")
		if ctx.ShardID() == 0 {
			fmt.Println(vals[0], vals[15])
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: 6 6
}

// Futures resolve identically on every shard, so replicated control
// flow may branch on them — including reductions over index launches.
func ExampleFutureMap_Reduce() {
	rt := godcr.NewRuntime(godcr.Config{Shards: 2})
	defer rt.Shutdown()
	rt.RegisterTask("point-id", func(tc *godcr.TaskContext) (float64, error) {
		return float64(tc.Point[0]), nil
	})
	_ = rt.Execute(func(ctx *godcr.Context) error {
		r := ctx.CreateRegion(godcr.R1(0, 7), "x")
		p := ctx.PartitionEqual(r, 8)
		fm := ctx.IndexLaunch(godcr.Launch{
			Task: "point-id", Domain: godcr.R1(0, 7),
			Reqs: []godcr.RegionReq{{Part: p, Priv: godcr.ReadOnly, Fields: []string{"x"}}},
		})
		sum := fm.Reduce(godcr.ReduceAdd).Get()
		if ctx.ShardID() == 0 {
			fmt.Println("sum of point ids:", sum)
		}
		return nil
	})
	// Output: sum of point ids: 28
}

// The replicated random stream lets control flow branch randomly and
// still stay control deterministic (the paper's Figure 4, fixed).
func ExampleContext_RNG() {
	rt := godcr.NewRuntime(godcr.Config{Shards: 3, SafetyChecks: true, Seed: 11})
	defer rt.Shutdown()
	_ = rt.Execute(func(ctx *godcr.Context) error {
		heads := 0
		for i := 0; i < 10; i++ {
			if ctx.RNG().Float64() < 0.5 {
				heads++
			}
		}
		// Every shard counted the same flips.
		if ctx.ShardID() == 0 {
			fmt.Println("heads:", heads)
		}
		return nil
	})
	// Output: heads: 7
}
