// Command stencil2d runs the paper's first benchmark (§5.1, Fig. 12):
// an implicitly parallel 2-D heat-diffusion stencil whose
// nearest-neighbor communication pattern the runtime must discover
// on the fly. The program also demonstrates tracing (§5.5): the time
// loop is bracketed with BeginTrace/EndTrace so steady-state
// iterations replay the memoized analysis.
//
// Usage:
//
//	go run ./examples/stencil2d -shards 4 -n 128 -tiles 4 -steps 20
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"godcr"
)

func main() {
	shards := flag.Int("shards", 4, "shards (nodes)")
	n := flag.Int("n", 128, "grid edge (n x n cells)")
	tiles := flag.Int("tiles", 4, "tile grid edge (tiles x tiles point tasks)")
	steps := flag.Int("steps", 20, "time steps")
	trace := flag.Bool("trace", true, "memoize the loop body's analysis")
	verify := flag.Bool("verify", true, "check against a sequential run")
	flag.Parse()

	rt := godcr.NewRuntime(godcr.Config{Shards: *shards, SafetyChecks: true})
	defer rt.Shutdown()

	// Jacobi update: next = 0.25*(N+S+E+W), Dirichlet boundary held
	// at the initial values.
	rt.RegisterTask("diffuse", func(tc *godcr.TaskContext) (float64, error) {
		next := tc.Region(0).Field("next")
		cur := tc.Region(1).Field("cur")
		next.Rect().Each(func(p godcr.Point) bool {
			next.Set(p, 0.25*(cur.At(godcr.Pt2(p[0]-1, p[1]))+
				cur.At(godcr.Pt2(p[0]+1, p[1]))+
				cur.At(godcr.Pt2(p[0], p[1]-1))+
				cur.At(godcr.Pt2(p[0], p[1]+1))))
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("copyback", func(tc *godcr.TaskContext) (float64, error) {
		cur := tc.Region(0).Field("cur")
		next := tc.Region(1).Field("next")
		cur.Rect().Each(func(p godcr.Point) bool {
			cur.Set(p, next.At(p))
			return true
		})
		return 0, nil
	})

	var result []float64
	start := time.Now()
	err := rt.Execute(func(ctx *godcr.Context) error {
		edge := int64(*n)
		grid := ctx.CreateRegion(godcr.R2(0, 0, edge-1, edge-1), "cur", "next")
		owned := ctx.PartitionEqual(grid, *tiles, *tiles)
		interior := ctx.PartitionInterior(owned, 1)
		ghost := ctx.PartitionHalo(owned, 1)
		domain := godcr.R2(0, 0, int64(*tiles)-1, int64(*tiles)-1)

		// Hot plate on the whole boundary: fill with 0, then set the
		// initial condition by a one-shot launch writing owned tiles.
		ctx.Fill(grid, "cur", 100)
		ctx.Fill(grid, "next", 0)

		for t := 0; t < *steps; t++ {
			if *trace {
				ctx.BeginTrace(1)
			}
			ctx.IndexLaunch(godcr.Launch{
				Task: "diffuse", Domain: domain, Sharding: godcr.Tiled,
				Reqs: []godcr.RegionReq{
					{Part: interior, Priv: godcr.WriteDiscard, Fields: []string{"next"}},
					{Part: ghost, Priv: godcr.ReadOnly, Fields: []string{"cur"}},
				},
			})
			ctx.IndexLaunch(godcr.Launch{
				Task: "copyback", Domain: domain, Sharding: godcr.Tiled,
				Reqs: []godcr.RegionReq{
					{Part: interior, Priv: godcr.ReadWrite, Fields: []string{"cur"}},
					{Part: interior, Priv: godcr.ReadOnly, Fields: []string{"next"}},
				},
			})
			if *trace {
				ctx.EndTrace(1)
			}
		}
		cur := ctx.InlineRead(grid, "cur")
		if ctx.ShardID() == 0 {
			result = cur
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if *verify {
		want := reference(*n, *steps)
		for i := range want {
			if math.Abs(result[i]-want[i]) > 1e-9 {
				log.Fatalf("MISMATCH at %d: got %v want %v", i, result[i], want[i])
			}
		}
		fmt.Printf("2-D stencil %dx%d, %d steps on %d shards — VERIFIED\n", *n, *n, *steps, *shards)
	}
	s := rt.Stats()
	center := result[(*n/2)*(*n)+(*n/2)]
	fmt.Printf("center temperature after %d steps: %.4f\n", *steps, center)
	fmt.Printf("elapsed %v; %d point tasks; fences %d inserted / %d elided; trace replays %d\n",
		elapsed, s.PointTasks, s.FencesInserted, s.FencesElided, s.TraceReplays)
	throughput := float64(*n**n**steps) / elapsed.Seconds()
	fmt.Printf("throughput: %.3g cell-updates/s\n", throughput)
}

// reference is the sequential Jacobi iteration.
func reference(n, steps int) []float64 {
	cur := make([]float64, n*n)
	next := make([]float64, n*n)
	for i := range cur {
		cur[i] = 100
	}
	for t := 0; t < steps; t++ {
		for r := 1; r < n-1; r++ {
			for c := 1; c < n-1; c++ {
				next[r*n+c] = 0.25 * (cur[(r-1)*n+c] + cur[(r+1)*n+c] + cur[r*n+c-1] + cur[r*n+c+1])
			}
		}
		for r := 1; r < n-1; r++ {
			for c := 1; c < n-1; c++ {
				cur[r*n+c] = next[r*n+c]
			}
		}
	}
	return cur
}
