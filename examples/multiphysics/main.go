// Command multiphysics is a miniature of the Soleil-X pattern the
// paper scales in §5.2 (Fig. 16): three coupled solvers that use
// *different partitions of the same data*, so every coupling step
// crosses partition boundaries — the "complex dependence patterns and
// control flow" that static control replication cannot compile and a
// centralized analyzer cannot keep up with.
//
//	fluid:     2-D block-partitioned heat diffusion (owned/ghost)
//	radiation: column-strip-partitioned sweep depositing heat
//	particles: 1-D partitioned tracers that absorb heat from the
//	           cells they sit in (reductions into block partition)
//
// Each step also reduces total system energy to a future and branches
// on it (data-dependent control flow: the simulation stops early once
// the field is nearly uniform).
//
// Usage:
//
//	go run ./examples/multiphysics -shards 4 -n 32 -steps 20
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"

	"godcr"
)

func main() {
	shards := flag.Int("shards", 4, "control-replicated shards")
	n := flag.Int("n", 32, "grid edge")
	blocks := flag.Int("blocks", 2, "fluid block grid edge (blocks x blocks)")
	strips := flag.Int("strips", 4, "radiation column strips")
	nparts := flag.Int("particles", 64, "tracer particles")
	steps := flag.Int("steps", 20, "max time steps")
	flag.Parse()

	run := func(sh int) ([]float64, []float64, int) {
		rt := godcr.NewRuntime(godcr.Config{Shards: sh, SafetyChecks: true})
		defer rt.Shutdown()
		register(rt, *n)
		var mu sync.Mutex
		var temp, pen []float64
		var took int
		err := rt.Execute(func(ctx *godcr.Context) error {
			edge := int64(*n)
			grid := ctx.CreateRegion(godcr.R2(0, 0, edge-1, edge-1), "temp", "qrad")
			parts := ctx.CreateRegion(godcr.R1(0, int64(*nparts)-1), "px", "py", "energy")

			fluidBlocks := ctx.PartitionEqual(grid, *blocks, *blocks)
			fluidGhost := ctx.PartitionHalo(fluidBlocks, 1)
			radStrips := ctx.PartitionEqual(grid, 1, *strips) // column strips
			pTiles := ctx.PartitionEqual(parts, *strips)
			// Particles may read/fold any cell: aliased full partition.
			fullRects := make([]godcr.Rect, *strips)
			for i := range fullRects {
				fullRects[i] = grid.Bounds
			}
			gridFull := ctx.PartitionCustom(grid, godcr.R1(0, int64(*strips)-1), fullRects)

			fluidDom := godcr.R2(0, 0, int64(*blocks)-1, int64(*blocks)-1)
			stripDom := godcr.R2(0, 0, 0, int64(*strips)-1)
			partDom := godcr.R1(0, int64(*strips)-1)

			// Initial state: hot spot in one corner, particles spread.
			ctx.Fill(grid, "temp", 1)
			ctx.Fill(grid, "qrad", 0)
			ctx.IndexLaunch(godcr.Launch{Task: "mp.init_hot", Domain: fluidDom,
				Reqs: []godcr.RegionReq{{Part: fluidBlocks, Priv: godcr.ReadWrite, Fields: []string{"temp"}}}})
			ctx.IndexLaunch(godcr.Launch{Task: "mp.init_particles", Domain: partDom,
				Args: []float64{float64(edge)},
				Reqs: []godcr.RegionReq{{Part: pTiles, Priv: godcr.WriteDiscard, Fields: []string{"px", "py", "energy"}}}})

			taken := 0
			for s := 0; s < *steps; s++ {
				// 1. Radiation: column sweep writes qrad (strip partition).
				ctx.IndexLaunch(godcr.Launch{Task: "mp.radiate", Domain: stripDom,
					Reqs: []godcr.RegionReq{
						{Part: radStrips, Priv: godcr.WriteDiscard, Fields: []string{"qrad"}},
						{Part: radStrips, Priv: godcr.ReadOnly, Fields: []string{"temp"}}}})
				// 2. Fluid: diffusion + qrad deposition, block partition
				//    reading the strip-written field (cross-partition!).
				ctx.IndexLaunch(godcr.Launch{Task: "mp.diffuse", Domain: fluidDom,
					Reqs: []godcr.RegionReq{
						{Part: fluidBlocks, Priv: godcr.ReadWrite, Fields: []string{"temp"}},
						{Part: fluidGhost, Priv: godcr.ReadOnly, Fields: []string{"temp"}},
						{Part: fluidBlocks, Priv: godcr.ReadOnly, Fields: []string{"qrad"}}}})
				// 3. Particles: absorb heat from their cells (reduction
				//    into the block-partitioned field via full alias).
				ctx.IndexLaunch(godcr.Launch{Task: "mp.absorb", Domain: partDom,
					Reqs: []godcr.RegionReq{
						{Part: pTiles, Priv: godcr.ReadWrite, Fields: []string{"px", "py", "energy"}},
						{Part: gridFull, Priv: godcr.Reduce, RedOp: godcr.ReduceAdd, Fields: []string{"temp"}}}})
				// 4. Data-dependent control flow: stop when the field
				//    spread collapses.
				fm := ctx.IndexLaunch(godcr.Launch{Task: "mp.spread", Domain: fluidDom,
					Reqs: []godcr.RegionReq{{Part: fluidBlocks, Priv: godcr.ReadOnly, Fields: []string{"temp"}}}})
				spread := fm.Reduce(godcr.ReduceMax).Get() - 1
				taken = s + 1
				if spread < 0.05 {
					break
				}
			}
			tv := ctx.InlineRead(grid, "temp")
			pe := ctx.InlineRead(parts, "energy")
			mu.Lock()
			temp, pen, took = tv, pe, taken
			mu.Unlock()
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return temp, pen, took
	}

	temp, energy, took := run(*shards)
	temp1, energy1, took1 := run(1)
	for i := range temp {
		if temp[i] != temp1[i] {
			log.Fatalf("MISMATCH vs 1 shard at cell %d: %v vs %v", i, temp[i], temp1[i])
		}
	}
	for i := range energy {
		if energy[i] != energy1[i] {
			log.Fatalf("particle MISMATCH at %d", i)
		}
	}
	if took != took1 {
		log.Fatalf("data-dependent step counts diverged: %d vs %d", took, took1)
	}
	totalE := 0.0
	for _, e := range energy {
		totalE += e
	}
	fmt.Printf("multiphysics: %dx%d grid, %d particles, 3 coupled solvers on %d shards — identical to 1 shard: VERIFIED\n",
		*n, *n, *nparts, *shards)
	fmt.Printf("stopped after %d steps (data-dependent); particle energy absorbed: %.4f\n", took, totalE)
}

func register(rt *godcr.Runtime, n int) {
	rt.RegisterTask("mp.init_hot", func(tc *godcr.TaskContext) (float64, error) {
		temp := tc.Region(0).Field("temp")
		temp.Rect().Each(func(p godcr.Point) bool {
			if p[0] < int64(n)/4 && p[1] < int64(n)/4 {
				temp.Set(p, 4)
			}
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("mp.init_particles", func(tc *godcr.TaskContext) (float64, error) {
		px := tc.Region(0).Field("px")
		py := tc.Region(0).Field("py")
		e := tc.Region(0).Field("energy")
		edge := int64(tc.Args[0])
		px.Rect().Each(func(p godcr.Point) bool {
			px.Set(p, float64((p[0]*7)%edge))
			py.Set(p, float64((p[0]*13)%edge))
			e.Set(p, 0)
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("mp.radiate", func(tc *godcr.TaskContext) (float64, error) {
		qrad := tc.Region(0).Field("qrad")
		temp := tc.Region(1).Field("temp")
		rect := qrad.Rect()
		if rect.Empty() {
			return 0, nil
		}
		// Sweep each column top to bottom: intensity attenuates and
		// deposits where the medium is cold.
		for c := rect.Lo[1]; c <= rect.Hi[1]; c++ {
			intensity := 1.0
			for r := rect.Lo[0]; r <= rect.Hi[0]; r++ {
				p := godcr.Pt2(r, c)
				absorb := intensity * 0.02 / temp.At(p)
				qrad.Set(p, absorb)
				intensity -= absorb
				if intensity < 0 {
					intensity = 0
				}
			}
		}
		return 0, nil
	})
	rt.RegisterTask("mp.diffuse", func(tc *godcr.TaskContext) (float64, error) {
		temp := tc.Region(0).Field("temp")
		ghost := tc.Region(1).Field("temp")
		qrad := tc.Region(2).Field("qrad")
		g := ghost.Rect()
		temp.Rect().Each(func(p godcr.Point) bool {
			sum, cnt := 0.0, 0.0
			for _, q := range []godcr.Point{
				godcr.Pt2(p[0]-1, p[1]), godcr.Pt2(p[0]+1, p[1]),
				godcr.Pt2(p[0], p[1]-1), godcr.Pt2(p[0], p[1]+1),
			} {
				if g.Contains(q) {
					sum += ghost.At(q)
					cnt++
				}
			}
			v := ghost.At(p) + 0.2*(sum-cnt*ghost.At(p)) + qrad.At(p)
			temp.Set(p, v)
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("mp.absorb", func(tc *godcr.TaskContext) (float64, error) {
		px := tc.Region(0).Field("px")
		py := tc.Region(0).Field("py")
		e := tc.Region(0).Field("energy")
		temp := tc.Region(1).Field("temp")
		px.Rect().Each(func(p godcr.Point) bool {
			cell := godcr.Pt2(int64(px.At(p)), int64(py.At(p)))
			// Take a sliver of heat out of the cell (negative fold).
			temp.Fold(cell, -0.001)
			e.Set(p, e.At(p)+0.001)
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("mp.spread", func(tc *godcr.TaskContext) (float64, error) {
		temp := tc.Region(0).Field("temp")
		maxv := math.Inf(-1)
		temp.Rect().Each(func(p godcr.Point) bool {
			if temp.At(p) > maxv {
				maxv = temp.At(p)
			}
			return true
		})
		return maxv, nil
	})
}
