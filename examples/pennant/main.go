// Command pennant is a miniature of the Pennant hydrodynamics
// mini-app the paper benchmarks against MPI (§5.1, Fig. 14): a 1-D
// staggered-grid compressible-flow step with the structural feature
// that bounds Pennant's parallel efficiency — every iteration ends in
// a *global* reduction computing the next time step, whose future
// value feeds the next iteration's launches ("this collective blocks
// all downstream work and incurs additional latency with increased
// processor counts").
//
// Grid: zones (density, energy, pressure) between nodes (velocity).
// Per step:
//
//	eos:     p_z   = (γ−1)·ρ_z·e_z
//	accel:   u_n  += dt·(p_{z−1} − p_z)/m        (reads zone ghosts)
//	work:    ρ_z, e_z updated from u ghosts
//	dt:      dt' = CFL · min_z(dx / c_z)          (future all-reduce)
//
// Usage:
//
//	go run ./examples/pennant -shards 4 -zones 128 -pieces 8 -steps 12
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"

	"godcr"
)

const gamma = 1.4

func main() {
	shards := flag.Int("shards", 4, "control-replicated shards")
	zones := flag.Int("zones", 128, "zones")
	pieces := flag.Int("pieces", 8, "pieces (point tasks)")
	steps := flag.Int("steps", 12, "time steps")
	flag.Parse()

	run := func(sh int) ([]float64, float64) {
		rt := godcr.NewRuntime(godcr.Config{Shards: sh, SafetyChecks: true})
		defer rt.Shutdown()
		registerTasks(rt)
		var mu sync.Mutex
		var rho []float64
		var lastDt float64
		err := rt.Execute(func(ctx *godcr.Context) error {
			nz := int64(*zones)
			zr := ctx.CreateRegion(godcr.R1(0, nz-1), "rho", "e", "p")
			nr := ctx.CreateRegion(godcr.R1(0, nz), "u")
			zOwned := ctx.PartitionEqual(zr, *pieces)
			zGhost := ctx.PartitionHalo(zOwned, 1)
			nOwned := ctx.PartitionEqual(nr, *pieces)
			nGhost := ctx.PartitionHalo(nOwned, 1)
			dom := godcr.R1(0, int64(*pieces)-1)

			// Sod-like initial condition: dense/hot left half.
			ctx.Fill(zr, "rho", 1)
			ctx.Fill(zr, "e", 1)
			ctx.Fill(zr, "p", 0)
			ctx.Fill(nr, "u", 0)
			ctx.IndexLaunch(godcr.Launch{Task: "init", Domain: dom, Args: []float64{float64(nz)},
				Reqs: []godcr.RegionReq{{Part: zOwned, Priv: godcr.ReadWrite, Fields: []string{"rho", "e"}}}})

			// First dt from the initial state.
			fm := ctx.IndexLaunch(godcr.Launch{Task: "calc_dt", Domain: dom,
				Reqs: []godcr.RegionReq{{Part: zOwned, Priv: godcr.ReadOnly, Fields: []string{"rho", "e"}}}})
			dt := fm.Reduce(godcr.ReduceMin)

			for s := 0; s < *steps; s++ {
				ctx.IndexLaunch(godcr.Launch{Task: "eos", Domain: dom,
					Reqs: []godcr.RegionReq{{Part: zOwned, Priv: godcr.ReadWrite, Fields: []string{"p", "rho", "e"}}}})
				// dt arrives as a *future argument*: the launch is
				// issued before the collective resolves, and the
				// runtime wires the dependence.
				ctx.IndexLaunch(godcr.Launch{Task: "accel", Domain: dom, Futures: []*godcr.Future{dt},
					Reqs: []godcr.RegionReq{
						{Part: nOwned, Priv: godcr.ReadWrite, Fields: []string{"u"}},
						{Part: zGhost, Priv: godcr.ReadOnly, Fields: []string{"p"}}}})
				ctx.IndexLaunch(godcr.Launch{Task: "work", Domain: dom, Futures: []*godcr.Future{dt},
					Reqs: []godcr.RegionReq{
						{Part: zOwned, Priv: godcr.ReadWrite, Fields: []string{"rho", "e"}},
						{Part: nGhost, Priv: godcr.ReadOnly, Fields: []string{"u"}}}})
				fm := ctx.IndexLaunch(godcr.Launch{Task: "calc_dt", Domain: dom,
					Reqs: []godcr.RegionReq{{Part: zOwned, Priv: godcr.ReadOnly, Fields: []string{"rho", "e"}}}})
				dt = fm.Reduce(godcr.ReduceMin)
			}
			final := dt.Get()
			r := ctx.InlineRead(zr, "rho")
			mu.Lock()
			rho = r
			lastDt = final
			mu.Unlock()
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return rho, lastDt
	}

	rho, dt := run(*shards)
	rho1, dt1 := run(1)
	for i := range rho {
		if rho[i] != rho1[i] {
			log.Fatalf("MISMATCH vs single shard at zone %d: %v vs %v", i, rho[i], rho1[i])
		}
	}
	if dt != dt1 {
		log.Fatalf("dt future mismatch: %v vs %v", dt, dt1)
	}
	mass := 0.0
	for _, r := range rho {
		mass += r
	}
	fmt.Printf("mini-Pennant: %d zones, %d pieces, %d steps on %d shards — identical to 1 shard: VERIFIED\n",
		*zones, *pieces, *steps, *shards)
	fmt.Printf("final dt (global min-reduction future) = %.6g; total mass = %.4f\n", dt, mass)
	fmt.Printf("rho[0]=%.4f rho[mid]=%.4f rho[last]=%.4f\n",
		rho[0], rho[len(rho)/2], rho[len(rho)-1])
}

func registerTasks(rt *godcr.Runtime) {
	rt.RegisterTask("init", func(tc *godcr.TaskContext) (float64, error) {
		rho := tc.Region(0).Field("rho")
		e := tc.Region(0).Field("e")
		nz := int64(tc.Args[0])
		rho.Rect().Each(func(p godcr.Point) bool {
			if p[0] < nz/2 {
				rho.Set(p, 2)
				e.Set(p, 2)
			}
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("eos", func(tc *godcr.TaskContext) (float64, error) {
		p := tc.Region(0).Field("p")
		rho := tc.Region(0).Field("rho")
		e := tc.Region(0).Field("e")
		p.Rect().Each(func(z godcr.Point) bool {
			p.Set(z, (gamma-1)*rho.At(z)*e.At(z))
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("accel", func(tc *godcr.TaskContext) (float64, error) {
		u := tc.Region(0).Field("u")
		p := tc.Region(1).Field("p")
		dt := tc.FutureArgs[0]
		ghost := p.Rect()
		u.Rect().Each(func(n godcr.Point) bool {
			left, right := 0.0, 0.0
			if lz := godcr.Pt1(n[0] - 1); ghost.Contains(lz) {
				left = p.At(lz)
			}
			if rz := godcr.Pt1(n[0]); ghost.Contains(rz) {
				right = p.At(rz)
			}
			u.Set(n, u.At(n)+dt*(left-right))
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("work", func(tc *godcr.TaskContext) (float64, error) {
		rho := tc.Region(0).Field("rho")
		e := tc.Region(0).Field("e")
		u := tc.Region(1).Field("u")
		dt := tc.FutureArgs[0]
		rho.Rect().Each(func(z godcr.Point) bool {
			ul := u.At(godcr.Pt1(z[0]))
			ur := u.At(godcr.Pt1(z[0] + 1))
			div := ur - ul
			// Lagrangian-ish compression update, clamped for the toy.
			r := rho.At(z) * (1 - dt*div)
			if r < 0.01 {
				r = 0.01
			}
			rho.Set(z, r)
			e.Set(z, math.Max(0.01, e.At(z)*(1-0.4*dt*div)))
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("calc_dt", func(tc *godcr.TaskContext) (float64, error) {
		rho := tc.Region(0).Field("rho")
		e := tc.Region(0).Field("e")
		minDt := math.Inf(1)
		rho.Rect().Each(func(z godcr.Point) bool {
			c := math.Sqrt(gamma * (gamma - 1) * e.At(z)) // sound speed
			if c > 0 {
				if d := 0.3 / c / float64(rho.Rect().Volume()); d < minDt {
					minDt = d
				}
			}
			return true
		})
		return minDt, nil
	})
}
