// Command logreg is the Legate NumPy demonstration (§5.4, Fig. 19):
// an unmodified "NumPy-style" logistic regression written against the
// mini-legate array library, which dynamically translates every array
// operation into index launches on the DCR runtime. The user never
// chooses chunk sizes or placements — the library and runtime do.
//
// Usage:
//
//	go run ./examples/logreg -shards 4 -samples 512 -features 16 -iters 50
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"godcr/internal/core"
	"godcr/internal/legate"
)

func main() {
	shards := flag.Int("shards", 4, "control-replicated shards")
	samples := flag.Int64("samples", 512, "training samples")
	features := flag.Int64("features", 16, "features")
	iters := flag.Int("iters", 50, "gradient-descent iterations")
	lr := flag.Float64("lr", 0.5, "learning rate")
	flag.Parse()

	rt := core.NewRuntime(core.Config{Shards: *shards, SafetyChecks: true})
	defer rt.Shutdown()
	legate.Register(rt)

	var mu sync.Mutex
	var res *legate.LogRegResult
	err := rt.Execute(func(ctx *core.Context) error {
		r := legate.RunLogReg(ctx, *samples, *features, *iters, *lr)
		mu.Lock()
		res = r
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("logistic regression: %d samples x %d features, %d iterations on %d shards\n",
		*samples, *features, *iters, *shards)
	fmt.Printf("final loss: %.6f\n", res.Loss)
	fmt.Printf("weights[0..%d]: %.4f\n", min(4, len(res.Weights))-1, res.Weights[:min(4, len(res.Weights))])
	s := rt.Stats()
	fmt.Printf("%d point tasks across %d analyzed ops; %d remote pulls\n",
		s.PointTasks, s.Ops, s.RemotePulls)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
