// Command determinism demonstrates control determinism (paper §3):
// what replicated control code may and may not do, and how the dynamic
// checker catches violations.
//
// It runs three scenarios:
//
//  1. Figure 4 done right: branching on a *replicated* counter-based
//     random stream is legal — every shard draws the same numbers.
//  2. Deferred deletions (§4.3): shards request a deletion at
//     different times (as a garbage collector would); the runtime
//     applies it only when all shards agree.
//  3. Figure 4 done wrong: branching on a shard-varying value. The
//     determinism checker aborts the run with a diagnostic instead of
//     letting the shards diverge silently.
//
// Usage:
//
//	go run ./examples/determinism -shards 4
package main

import (
	"flag"
	"fmt"
	"log"

	"godcr"
)

func main() {
	shards := flag.Int("shards", 4, "control-replicated shards")
	flag.Parse()

	// --- Scenario 1: replicated randomness -------------------------
	rt := godcr.NewRuntime(godcr.Config{Shards: *shards, SafetyChecks: true, CheckInterval: 4})
	rt.RegisterTask("algorithm0", nop)
	rt.RegisterTask("algorithm1", nop)
	err := rt.Execute(func(ctx *godcr.Context) error {
		r := ctx.CreateRegion(godcr.R1(0, 63), "x")
		p := ctx.PartitionEqual(r, 4)
		picks := 0
		for i := 0; i < 10; i++ {
			// The Figure 4 idiom, fixed: ctx.RNG() is counter-based,
			// so every shard takes the same branch.
			task := "algorithm0"
			if ctx.RNG().Float64() < 0.5 {
				task = "algorithm1"
				picks++
			}
			ctx.IndexLaunch(godcr.Launch{Task: task, Domain: godcr.R1(0, 3),
				Reqs: []godcr.RegionReq{{Part: p, Priv: godcr.ReadWrite, Fields: []string{"x"}}}})
		}
		ctx.ExecutionFence()
		if ctx.ShardID() == 0 {
			fmt.Printf("scenario 1: 10 random branches, %d chose algorithm1 — identical on all %d shards: OK\n",
				picks, ctx.NumShards())
		}
		return nil
	})
	if err != nil {
		log.Fatalf("scenario 1 should not fail: %v", err)
	}
	rt.Shutdown()

	// --- Scenario 2: deferred deletions ----------------------------
	rt2 := godcr.NewRuntime(godcr.Config{Shards: *shards, SafetyChecks: true})
	err = rt2.Execute(func(ctx *godcr.Context) error {
		r := ctx.CreateRegion(godcr.R1(0, 15), "x")
		ctx.Fill(r, "x", 1)
		// Simulate a GC finalizer: shards request the deletion at
		// "different times" (the call is not hashed, so staggering is
		// legal). Here only some shards have requested by the first
		// fence...
		if ctx.ShardID()%2 == 0 {
			ctx.DeferredDelete(r)
		}
		ctx.ExecutionFence()
		early := len(ctx.DeletedRegions())
		// ...and everyone has by the second.
		if ctx.ShardID()%2 == 1 {
			ctx.DeferredDelete(r)
		}
		ctx.ExecutionFence()
		late := len(ctx.DeletedRegions())
		if ctx.ShardID() == 0 {
			fmt.Printf("scenario 2: deletion applied after first fence: %v; after consensus: %v — OK\n",
				early == 1, late == 1)
		}
		return nil
	})
	if err != nil {
		log.Fatalf("scenario 2 should not fail: %v", err)
	}
	rt2.Shutdown()

	// --- Scenario 3: a real violation, caught ----------------------
	rt3 := godcr.NewRuntime(godcr.Config{Shards: *shards, SafetyChecks: true, CheckInterval: 1})
	defer rt3.Shutdown()
	err = rt3.Execute(func(ctx *godcr.Context) error {
		r := ctx.CreateRegion(godcr.R1(0, 15), "x")
		// The Figure 4 bug: each shard fills with a different value.
		ctx.Fill(r, "x", float64(ctx.ShardID()))
		for i := 0; i < 8; i++ {
			ctx.Fill(r, "x", float64(i))
		}
		return nil
	})
	if err == nil {
		log.Fatal("scenario 3: the violation was NOT detected")
	}
	fmt.Printf("scenario 3: violation detected as expected:\n  %v\n", err)
}

func nop(tc *godcr.TaskContext) (float64, error) { return 0, nil }
