// Command recover demonstrates checkpoint-on-stall and shard restart.
// It runs the Figure 7 stencil with the control journal enabled and a
// fault plan that crashes one shard's transport mid-run. The deadlock
// watchdog converts the resulting hang into a *StallError carrying a
// Checkpoint; the demo round-trips that checkpoint through its binary
// wire format (as a real recovery would, persisting it across
// processes), revives the transport — re-admitting the crashed shard
// into a new epoch — and Resumes. The resumed run fast-forwards the
// journaled prefix of the op stream and completes bit-identical to a
// fault-free run.
//
// Usage:
//
//	go run ./examples/recover -shards 4 -crash-node 2 -crash-after 60
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"godcr"
)

func main() {
	shards := flag.Int("shards", 4, "number of control-replicated shards")
	crashNode := flag.Int("crash-node", 2, "shard whose transport crashes")
	crashAfter := flag.Int("crash-after", 60, "sends before the crash")
	ncells := flag.Int("cells", 64, "grid cells")
	nsteps := flag.Int("steps", 6, "time steps")
	flag.Parse()

	// Fault-free reference first: the recovery contract is bit-identical
	// output, so compute what "correct" means.
	ref := newStencilRuntime(godcr.Config{Shards: *shards, SafetyChecks: true, Journal: true})
	var want []float64
	if err := ref.Execute(stencilProgram(*ncells, *shards, *nsteps, func(flux []float64) {
		want = append([]float64(nil), flux...)
	})); err != nil {
		log.Fatalf("fault-free run: %v", err)
	}
	wantHash := ref.ControlHash()
	ref.Shutdown()

	// The doomed run: journal on, watchdog armed, one shard's transport
	// crashing mid-run.
	rt := newStencilRuntime(godcr.Config{
		Shards:       *shards,
		SafetyChecks: true,
		Journal:      true,
		OpDeadline:   300 * time.Millisecond,
		Faults: &godcr.FaultPlan{
			Stalls: []godcr.StallWindow{{
				Node: godcr.NodeID(*crashNode), AfterSends: uint64(*crashAfter), Crash: true,
			}},
		},
	})
	defer rt.Shutdown()

	var mu sync.Mutex
	var got []float64
	program := stencilProgram(*ncells, *shards, *nsteps, func(flux []float64) {
		mu.Lock()
		got = append([]float64(nil), flux...)
		mu.Unlock()
	})

	err := rt.Execute(program)
	var stall *godcr.StallError
	if !errors.As(err, &stall) || stall.Checkpoint == nil {
		log.Fatalf("expected a checkpointed StallError, got: %v", err)
	}
	fmt.Printf("watchdog: %v\n\n", stall)

	// Persist and reload the checkpoint, as a recovery across processes
	// would. Encode/DecodeCheckpoint is the stable wire format.
	image := stall.Checkpoint.Encode()
	cp, err := godcr.DecodeCheckpoint(image)
	if err != nil {
		log.Fatalf("checkpoint round-trip: %v", err)
	}
	fmt.Printf("checkpoint: %d bytes, frontier op %d, %d region versions\n",
		len(image), cp.Frontier, len(cp.Versions))

	// Resume: revive the transport into a new epoch (every shard joins
	// the re-admission barrier) and replay the journaled prefix.
	if err := rt.Resume(cp, program); err != nil {
		log.Fatalf("resume: %v", err)
	}
	st := rt.Stats()
	fmt.Printf("resumed: %d ops fast-forwarded from the journal\n", st.JournalReplays)

	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("flux[%d] = %v, want %v: recovery is not bit-identical", i, got[i], want[i])
		}
	}
	if rt.ControlHash() != wantHash {
		log.Fatalf("control hash diverged after resume")
	}
	fmt.Printf("verified: %d cells and control hash %x bit-identical to the fault-free run\n",
		len(want), rt.ControlHash())
}

func newStencilRuntime(cfg godcr.Config) *godcr.Runtime {
	rt := godcr.NewRuntime(cfg)
	rt.RegisterTask("add_one", func(tc *godcr.TaskContext) (float64, error) {
		state := tc.Region(0).Field("state")
		state.Rect().Each(func(p godcr.Point) bool {
			state.Set(p, state.At(p)+1)
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("stencil", func(tc *godcr.TaskContext) (float64, error) {
		flux := tc.Region(0).Field("flux")
		state := tc.Region(1).Field("state")
		flux.Rect().Each(func(p godcr.Point) bool {
			l := state.At(godcr.Pt1(p[0] - 1))
			r := state.At(godcr.Pt1(p[0] + 1))
			flux.Set(p, flux.At(p)+0.5*(l+r))
			return true
		})
		return 0, nil
	})
	return rt
}

func stencilProgram(ncells, ntiles, nsteps int, deliver func(flux []float64)) godcr.Program {
	return func(ctx *godcr.Context) error {
		grid := godcr.R1(0, int64(ncells)-1)
		tiles := godcr.R1(0, int64(ntiles)-1)
		cells := ctx.CreateRegion(grid, "state", "flux")
		owned := ctx.PartitionEqual(cells, ntiles)
		interior := ctx.PartitionInterior(owned, 1)
		ghost := ctx.PartitionHalo(owned, 1)
		ctx.Fill(cells, "state", 1.0)
		ctx.Fill(cells, "flux", 1.0)
		for t := 0; t < nsteps; t++ {
			ctx.IndexLaunch(godcr.Launch{
				Task: "add_one", Domain: tiles,
				Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"state"}}},
			})
			ctx.IndexLaunch(godcr.Launch{
				Task: "stencil", Domain: tiles,
				Reqs: []godcr.RegionReq{
					{Part: interior, Priv: godcr.ReadWrite, Fields: []string{"flux"}},
					{Part: ghost, Priv: godcr.ReadOnly, Fields: []string{"state"}},
				},
			})
		}
		deliver(ctx.InlineRead(cells, "flux"))
		return nil
	}
}
