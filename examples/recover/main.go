// Command recover demonstrates the self-healing runtime. It runs the
// Figure 7 stencil with periodic checkpoints and heartbeat failure
// detection enabled, under a fault plan that crashes one shard's
// transport mid-run. RunSupervised closes the recovery loop
// automatically: the heartbeat detector declares the shard down in
// O(heartbeat interval) (the deadlock watchdog is armed as a backstop),
// the supervisor picks the freshest checkpoint, revives the transport
// into a new epoch, and resumes — replaying the journaled prefix of the
// op stream. The healed run completes bit-identical to a fault-free
// run: same outputs, same 128-bit control hash.
//
// Usage:
//
//	go run ./examples/recover -shards 4 -crash-node 2 -crash-after 60
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"godcr"
)

func main() {
	shards := flag.Int("shards", 4, "number of control-replicated shards")
	crashNode := flag.Int("crash-node", 2, "shard whose transport crashes")
	crashAfter := flag.Int("crash-after", 60, "sends before the crash")
	ncells := flag.Int("cells", 64, "grid cells")
	nsteps := flag.Int("steps", 6, "time steps")
	flag.Parse()

	// Fault-free reference first: the recovery contract is bit-identical
	// output, so compute what "correct" means.
	ref := newStencilRuntime(godcr.Config{Shards: *shards, SafetyChecks: true, Journal: true})
	var want []float64
	if err := ref.Execute(stencilProgram(*ncells, *shards, *nsteps, func(flux []float64) {
		want = append([]float64(nil), flux...)
	})); err != nil {
		log.Fatalf("fault-free run: %v", err)
	}
	wantHash := ref.ControlHash()
	ref.Shutdown()

	// The doomed run: periodic checkpoints every 8 ops, heartbeat
	// failure detection every 2ms, the deadlock watchdog as backstop,
	// and one shard's transport crashing mid-run.
	rt := newStencilRuntime(godcr.Config{
		Shards:          *shards,
		SafetyChecks:    true,
		CheckpointEvery: 8,
		HeartbeatEvery:  2 * time.Millisecond,
		OpDeadline:      2 * time.Second,
		Faults: &godcr.FaultPlan{
			Stalls: []godcr.StallWindow{{
				Node: godcr.NodeID(*crashNode), AfterSends: uint64(*crashAfter), Crash: true,
			}},
		},
	})
	defer rt.Shutdown()

	var mu sync.Mutex
	var got []float64
	program := stencilProgram(*ncells, *shards, *nsteps, func(flux []float64) {
		mu.Lock()
		got = append([]float64(nil), flux...)
		mu.Unlock()
	})

	// RunSupervised = Execute → detect → checkpoint → Revive → Resume,
	// with bounded restarts and exponential backoff. OnEvent narrates
	// each healing step.
	err := rt.RunSupervised(program, godcr.SupervisorPolicy{
		MaxRestarts: 3,
		Backoff:     5 * time.Millisecond,
		OnEvent: func(e godcr.SupervisorEvent) {
			fmt.Printf("supervisor: attempt %d failed: %v\n", e.Attempt, e.Err)
			fmt.Printf("supervisor: restarting from checkpoint frontier %d after %v\n\n",
				e.Frontier, e.Backoff)
		},
	})
	if err != nil {
		log.Fatalf("supervised run did not heal: %v", err)
	}
	st := rt.Stats()
	fmt.Printf("healed: %d ops fast-forwarded from the journal\n", st.JournalReplays)

	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("flux[%d] = %v, want %v: recovery is not bit-identical", i, got[i], want[i])
		}
	}
	if rt.ControlHash() != wantHash {
		log.Fatalf("control hash diverged after recovery")
	}
	fmt.Printf("verified: %d cells and control hash %x bit-identical to the fault-free run\n",
		len(want), rt.ControlHash())
}

func newStencilRuntime(cfg godcr.Config) *godcr.Runtime {
	rt := godcr.NewRuntime(cfg)
	rt.RegisterTask("add_one", func(tc *godcr.TaskContext) (float64, error) {
		state := tc.Region(0).Field("state")
		state.Rect().Each(func(p godcr.Point) bool {
			state.Set(p, state.At(p)+1)
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("stencil", func(tc *godcr.TaskContext) (float64, error) {
		flux := tc.Region(0).Field("flux")
		state := tc.Region(1).Field("state")
		flux.Rect().Each(func(p godcr.Point) bool {
			l := state.At(godcr.Pt1(p[0] - 1))
			r := state.At(godcr.Pt1(p[0] + 1))
			flux.Set(p, flux.At(p)+0.5*(l+r))
			return true
		})
		return 0, nil
	})
	return rt
}

func stencilProgram(ncells, ntiles, nsteps int, deliver func(flux []float64)) godcr.Program {
	return func(ctx *godcr.Context) error {
		grid := godcr.R1(0, int64(ncells)-1)
		tiles := godcr.R1(0, int64(ntiles)-1)
		cells := ctx.CreateRegion(grid, "state", "flux")
		owned := ctx.PartitionEqual(cells, ntiles)
		interior := ctx.PartitionInterior(owned, 1)
		ghost := ctx.PartitionHalo(owned, 1)
		ctx.Fill(cells, "state", 1.0)
		ctx.Fill(cells, "flux", 1.0)
		for t := 0; t < nsteps; t++ {
			ctx.IndexLaunch(godcr.Launch{
				Task: "add_one", Domain: tiles,
				Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"state"}}},
			})
			ctx.IndexLaunch(godcr.Launch{
				Task: "stencil", Domain: tiles,
				Reqs: []godcr.RegionReq{
					{Part: interior, Priv: godcr.ReadWrite, Fields: []string{"flux"}},
					{Part: ghost, Priv: godcr.ReadOnly, Fields: []string{"state"}},
				},
			})
		}
		deliver(ctx.InlineRead(cells, "flux"))
		return nil
	}
}
