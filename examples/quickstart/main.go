// Command quickstart is the paper's Figure 7 program — the 1-D
// stencil written in Regent — ported to the godcr public API. The
// apparently sequential main loop below executes as N replicated
// shards that cooperatively analyze dependences; run with different
// -shards values and observe identical results.
//
// Usage:
//
//	go run ./examples/quickstart -shards 4 -cells 64 -tiles 4 -steps 5
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"godcr"
)

func main() {
	shards := flag.Int("shards", 4, "number of control-replicated shards (nodes)")
	ncells := flag.Int("cells", 64, "grid cells")
	ntiles := flag.Int("tiles", 4, "tiles (point tasks per launch)")
	nsteps := flag.Int("steps", 5, "time steps")
	init := flag.Float64("init", 1.0, "initial value")
	flag.Parse()

	rt := godcr.NewRuntime(godcr.Config{Shards: *shards, SafetyChecks: true})
	defer rt.Shutdown()

	// The three tasks of Figure 7.
	rt.RegisterTask("add_one", func(tc *godcr.TaskContext) (float64, error) {
		state := tc.Region(0).Field("state")
		state.Rect().Each(func(p godcr.Point) bool {
			state.Set(p, state.At(p)+1)
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("mul_two", func(tc *godcr.TaskContext) (float64, error) {
		flux := tc.Region(0).Field("flux")
		flux.Rect().Each(func(p godcr.Point) bool {
			flux.Set(p, flux.At(p)*2)
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("stencil", func(tc *godcr.TaskContext) (float64, error) {
		flux := tc.Region(0).Field("flux")
		state := tc.Region(1).Field("state")
		flux.Rect().Each(func(p godcr.Point) bool {
			l := state.At(godcr.Pt1(p[0] - 1))
			r := state.At(godcr.Pt1(p[0] + 1))
			flux.Set(p, flux.At(p)+0.5*(l+r))
			return true
		})
		return 0, nil
	})

	var result []float64
	err := rt.Execute(func(ctx *godcr.Context) error {
		grid := godcr.R1(0, int64(*ncells)-1)
		tiles := godcr.R1(0, int64(*ntiles)-1)
		cells := ctx.CreateRegion(grid, "state", "flux")
		owned := ctx.PartitionEqual(cells, *ntiles)
		interior := ctx.PartitionInterior(owned, 1)
		ghost := ctx.PartitionHalo(owned, 1)

		ctx.Fill(cells, "state", *init)
		ctx.Fill(cells, "flux", *init)
		for t := 0; t < *nsteps; t++ {
			ctx.IndexLaunch(godcr.Launch{
				Task: "add_one", Domain: tiles,
				Reqs: []godcr.RegionReq{{Part: owned, Priv: godcr.ReadWrite, Fields: []string{"state"}}},
			})
			ctx.IndexLaunch(godcr.Launch{
				Task: "mul_two", Domain: tiles,
				Reqs: []godcr.RegionReq{{Part: interior, Priv: godcr.ReadWrite, Fields: []string{"flux"}}},
			})
			ctx.IndexLaunch(godcr.Launch{
				Task: "stencil", Domain: tiles,
				Reqs: []godcr.RegionReq{
					{Part: interior, Priv: godcr.ReadWrite, Fields: []string{"flux"}},
					{Part: ghost, Priv: godcr.ReadOnly, Fields: []string{"state"}},
				},
			})
		}
		flux := ctx.InlineRead(cells, "flux")
		if ctx.ShardID() == 0 {
			result = flux
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Check against sequential semantics.
	want := reference(*ncells, *init, *nsteps)
	for i := range want {
		if math.Abs(result[i]-want[i]) > 1e-9 {
			log.Fatalf("MISMATCH at cell %d: got %v want %v", i, result[i], want[i])
		}
	}
	stats := rt.Stats()
	fmt.Printf("1-D stencil: %d cells, %d tiles, %d steps on %d shards — VERIFIED\n",
		*ncells, *ntiles, *nsteps, *shards)
	fmt.Printf("flux[0..7] = %.1f\n", result[:min(8, len(result))])
	fmt.Printf("stats: %d point tasks, %d fences inserted, %d elided, %d remote pulls\n",
		stats.PointTasks, stats.FencesInserted, stats.FencesElided, stats.RemotePulls)
}

func reference(n int, init float64, steps int) []float64 {
	state := make([]float64, n)
	flux := make([]float64, n)
	for i := range state {
		state[i], flux[i] = init, init
	}
	for t := 0; t < steps; t++ {
		for i := range state {
			state[i]++
		}
		for i := 1; i < n-1; i++ {
			flux[i] *= 2
		}
		prev := append([]float64(nil), state...)
		for i := 1; i < n-1; i++ {
			flux[i] += 0.5 * (prev[i-1] + prev[i+1])
		}
	}
	return flux
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
