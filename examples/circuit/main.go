// Command circuit runs the paper's circuit-simulation benchmark
// (§5.1, Fig. 13): an explicit time-stepped simulation of a graph of
// circuit components. The graph is partitioned *dynamically* (the
// communication pattern is not known until runtime — exactly the case
// that defeats static control replication), and wires crossing piece
// boundaries fold their currents into shared nodes with Reduce
// privileges.
//
// Per iteration:
//
//	calc_currents:    i_w   = (v[src(w)] - v[dst(w)]) / R_w
//	distribute:       q_n  += Σ_w  ±i_w · dt          (reduction!)
//	update_voltages:  v_n  += q_n / C_n ;  q_n = 0
//
// Usage:
//
//	go run ./examples/circuit -shards 4 -nodes 256 -pieces 8 -steps 10
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"godcr"
)

func main() {
	shards := flag.Int("shards", 4, "control-replicated shards")
	nNodes := flag.Int("nodes", 256, "circuit nodes")
	pieces := flag.Int("pieces", 8, "graph pieces (point tasks)")
	steps := flag.Int("steps", 10, "time steps")
	wiresPer := flag.Int("wires", 4, "wires per circuit node")
	seed := flag.Uint64("seed", 7, "graph seed")
	flag.Parse()

	nWires := *nNodes * *wiresPer
	const dt = 1e-2

	rt := godcr.NewRuntime(godcr.Config{Shards: *shards, SafetyChecks: true, Seed: *seed})
	defer rt.Shutdown()

	// Wire endpoints are stored as float-encoded node ids in wire
	// fields (the data-dependent structure the runtime cannot know
	// statically).
	rt.RegisterTask("calc_currents", func(tc *godcr.TaskContext) (float64, error) {
		cur := tc.Region(0).Field("current")
		src := tc.Region(0).Field("src")
		dst := tc.Region(0).Field("dst")
		res := tc.Region(0).Field("resistance")
		volt := tc.Region(1).Field("voltage")
		cur.Rect().Each(func(p godcr.Point) bool {
			s, d := int64(src.At(p)), int64(dst.At(p))
			i := (volt.At(godcr.Pt1(s)) - volt.At(godcr.Pt1(d))) / res.At(p)
			cur.Set(p, i)
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("distribute_charge", func(tc *godcr.TaskContext) (float64, error) {
		charge := tc.Region(0).Field("charge") // Reduce(add) over all nodes
		cur := tc.Region(1).Field("current")
		src := tc.Region(1).Field("src")
		dst := tc.Region(1).Field("dst")
		cur.Rect().Each(func(p godcr.Point) bool {
			i := cur.At(p)
			charge.Fold(godcr.Pt1(int64(src.At(p))), -i*dt)
			charge.Fold(godcr.Pt1(int64(dst.At(p))), +i*dt)
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("update_voltages", func(tc *godcr.TaskContext) (float64, error) {
		volt := tc.Region(0).Field("voltage")
		charge := tc.Region(0).Field("charge")
		cap := tc.Region(0).Field("capacitance")
		total := 0.0
		volt.Rect().Each(func(p godcr.Point) bool {
			volt.Set(p, volt.At(p)+charge.At(p)/cap.At(p))
			total += volt.At(p)
			charge.Set(p, 0)
			return true
		})
		return total, nil
	})
	rt.RegisterTask("init_voltage", func(tc *godcr.TaskContext) (float64, error) {
		volt := tc.Region(0).Field("voltage")
		volt.Rect().Each(func(p godcr.Point) bool {
			volt.Set(p, float64(p[0]%5))
			return true
		})
		return 0, nil
	})
	rt.RegisterTask("init_graph", func(tc *godcr.TaskContext) (float64, error) {
		src := tc.Region(0).Field("src")
		dst := tc.Region(0).Field("dst")
		res := tc.Region(0).Field("resistance")
		n := tc.Args[0]
		seed := uint64(tc.Args[1])
		src.Rect().Each(func(p godcr.Point) bool {
			// Deterministic pseudo-random graph: mostly-local wires
			// with a tail of long-range edges (the paper's
			// "small-diameter graph").
			w := uint64(p[0])
			a := int64(w) % int64(n)
			hop := int64(1 + godcr.NewRNG(seed+w).Intn(8))
			if godcr.NewRNG(seed^w).Float64() < 0.1 {
				hop = int64(godcr.NewRNG(seed*31 + w).Intn(int(n)))
			}
			b := (a + hop) % int64(n)
			if b == a {
				b = (a + 1) % int64(n)
			}
			src.Set(p, float64(a))
			dst.Set(p, float64(b))
			res.Set(p, 1+float64(w%7))
			return true
		})
		return 0, nil
	})

	var finalV []float64
	err := rt.Execute(func(ctx *godcr.Context) error {
		nodes := ctx.CreateRegion(godcr.R1(0, int64(*nNodes)-1), "voltage", "charge", "capacitance")
		wires := ctx.CreateRegion(godcr.R1(0, int64(nWires)-1), "current", "src", "dst", "resistance")
		wirePieces := ctx.PartitionEqual(wires, *pieces)
		nodePieces := ctx.PartitionEqual(nodes, *pieces)
		// Every piece can read/reduce any node (shared/ghost nodes):
		// an aliased all-nodes partition.
		allRects := make([]godcr.Rect, *pieces)
		for i := range allRects {
			allRects[i] = godcr.R1(0, int64(*nNodes)-1)
		}
		allNodes := ctx.PartitionCustom(nodes, godcr.R1(0, int64(*pieces)-1), allRects)
		domain := godcr.R1(0, int64(*pieces)-1)

		ctx.Fill(nodes, "voltage", 1)
		ctx.Fill(nodes, "charge", 0)
		ctx.Fill(nodes, "capacitance", 2)
		ctx.IndexLaunch(godcr.Launch{
			Task: "init_graph", Domain: domain,
			Args: []float64{float64(*nNodes), float64(*seed)},
			Reqs: []godcr.RegionReq{{Part: wirePieces, Priv: godcr.WriteDiscard,
				Fields: []string{"src", "dst", "resistance"}}},
		})
		// Non-uniform initial voltages so currents flow.
		ctx.IndexLaunch(godcr.Launch{
			Task: "init_voltage", Domain: domain,
			Reqs: []godcr.RegionReq{{Part: nodePieces, Priv: godcr.ReadWrite, Fields: []string{"voltage"}}},
		})
		var sumFut *godcr.Future
		for t := 0; t < *steps; t++ {
			ctx.IndexLaunch(godcr.Launch{
				Task: "calc_currents", Domain: domain,
				Reqs: []godcr.RegionReq{
					{Part: wirePieces, Priv: godcr.ReadWrite, Fields: []string{"current", "src", "dst", "resistance"}},
					{Part: allNodes, Priv: godcr.ReadOnly, Fields: []string{"voltage"}},
				},
			})
			ctx.IndexLaunch(godcr.Launch{
				Task: "distribute_charge", Domain: domain,
				Reqs: []godcr.RegionReq{
					{Part: allNodes, Priv: godcr.Reduce, RedOp: godcr.ReduceAdd, Fields: []string{"charge"}},
					{Part: wirePieces, Priv: godcr.ReadOnly, Fields: []string{"current", "src", "dst"}},
				},
			})
			fm := ctx.IndexLaunch(godcr.Launch{
				Task: "update_voltages", Domain: domain,
				Reqs: []godcr.RegionReq{
					{Part: nodePieces, Priv: godcr.ReadWrite, Fields: []string{"voltage", "charge", "capacitance"}},
				},
			})
			sumFut = fm.Reduce(godcr.ReduceAdd)
		}
		total := sumFut.Get()
		v := ctx.InlineRead(nodes, "voltage")
		if ctx.ShardID() == 0 {
			finalV = v
		}
		// Kirchhoff sanity on every shard: charge moves between
		// nodes, never created — with uniform capacitance the total
		// voltage is conserved.
		want := 0.0
		for i := 0; i < *nNodes; i++ {
			want += float64(i % 5)
		}
		if math.Abs(total-want) > 1e-6 {
			return fmt.Errorf("charge not conserved: total voltage %v, want %v", total, want)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	varv := variance(finalV)
	s := rt.Stats()
	fmt.Printf("circuit: %d nodes, %d wires, %d pieces, %d steps on %d shards\n",
		*nNodes, nWires, *pieces, *steps, *shards)
	fmt.Printf("voltage variance after %d steps: %.6f (diffusing toward 0)\n", *steps, varv)
	fmt.Printf("conservation: VERIFIED; %d point tasks, %d remote pulls, %d fences\n",
		s.PointTasks, s.RemotePulls, s.FencesInserted)
}

func variance(v []float64) float64 {
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	out := 0.0
	for _, x := range v {
		out += (x - mean) * (x - mean)
	}
	return out / float64(len(v))
}
